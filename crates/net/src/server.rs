//! The TCP server: acceptor, per-connection IO threads, a pool of engine
//! worker threads over one shared backend, and explicit admission control.
//!
//! ## Threading model
//!
//! The chronorank engines are `Send + Sync` (the whole index stack is),
//! so one backend is **shared**: [`NetConfig::engine_threads`] worker
//! threads drain a common job queue against the same `Arc`'d engine. A
//! read-only [`ServeEngine`] answers every job through `&self` — engine
//! workers genuinely overlap. A live [`IngestEngine`] sits behind an
//! `RwLock`: queries overlap as readers, while appends and checkpoints
//! serialize as writers (there is exactly one WAL).
//!
//! Around that shared resource:
//!
//! * an **acceptor** thread owns the listener, enforces the connection
//!   cap (over-limit connections are answered with one typed BUSY frame
//!   and closed), and spawns a reader + writer thread per connection;
//! * each **reader** drains its socket through the streaming
//!   [`Decoder`](crate::frame::Decoder), answers PING inline, and submits
//!   engine ops — but only after passing **admission control**: a global
//!   in-flight counter bounded by [`NetConfig::max_in_flight`]. At the
//!   bound the reader answers a typed [`ErrCode::Busy`] error instead of
//!   queueing unboundedly, so overload degrades into explicit,
//!   client-visible pushback rather than memory growth;
//! * each **writer** owns the socket's write half behind a `BufWriter`,
//!   flushing whenever its queue momentarily drains (adaptive batching:
//!   pipelined bursts coalesce into few syscalls, single requests flush
//!   immediately).
//!
//! With more than one engine thread, jobs from a single connection may
//! complete out of submission order; responses carry the request id they
//! answer, and the client matches ids explicitly, so pipelining stays
//! unambiguous.
//!
//! Shutdown is clean and total: the stop flag is raised, the acceptor is
//! woken with a loopback connection, every live socket is shut down, and
//! every thread — acceptor, readers, writers, engine workers — is joined
//! before [`NetServer::shutdown`] returns.

use crate::frame::{
    AppendOk, Decoder, ErrCode, ErrorBody, Frame, FrameError, OpCode, StatsBody, TopKRequest,
    TopKResponse, MAX_PAYLOAD,
};
use chronorank_core::{AppendRecord, TemporalSet, TopK};
use chronorank_live::{IngestEngine, LiveConfig};
use chronorank_obs::{
    elapsed_us, spans_json, ActiveSpan, AttrValue, Counter, Histogram, Registry, SloObjective,
    SloTracker, SpanId, SpanSink, TraceId,
};
use chronorank_serve::{Route, ServeConfig, ServeEngine, ServeQuery};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; port 0 picks a free port (read it back with
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Admission-control bound: engine frames accepted but not yet
    /// answered, across all connections. At the bound, further frames are
    /// refused with a typed BUSY error. `0` refuses everything — useful
    /// for testing client overload handling.
    pub max_in_flight: usize,
    /// Connection cap; over-limit connections receive one BUSY frame and
    /// are closed.
    pub max_connections: usize,
    /// Engine worker threads draining the shared job queue against one
    /// shared backend. More than one lets CPU-bound queries overlap
    /// (reads run through `&self` / a read lock); live-backend writes
    /// still serialize on the backend's write lock.
    pub engine_threads: usize,
    /// The latency/error objective the server's SLO burn-rate tracker
    /// measures TOPK serving against. Burn rates surface as registry
    /// gauges (METRICS) and through the TRACE wire op.
    pub slo: SloObjective,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_in_flight: 256,
            max_connections: 64,
            engine_threads: 1,
            slo: SloObjective::default(),
        }
    }
}

/// What a [`NetServer`] fronts: the read-only serving engine or the
/// WAL-backed live ingest engine.
pub enum Backend {
    /// Read path only: TOPK / STATS / PING (appends answer `Unsupported`).
    /// Queried concurrently through `&self` by every engine worker.
    Serve(ServeEngine),
    /// Read + write paths: everything, including APPEND_BATCH and
    /// CHECKPOINT. Queries take the read lock (overlapping); appends and
    /// checkpoints take the write lock (serialized — one WAL).
    Live(RwLock<IngestEngine>),
}

impl From<ServeEngine> for Backend {
    fn from(e: ServeEngine) -> Self {
        Backend::Serve(e)
    }
}

impl From<IngestEngine> for Backend {
    fn from(e: IngestEngine) -> Self {
        Backend::Live(RwLock::new(e))
    }
}

impl Backend {
    /// Answer one TOPK. With a `span` context, the engine joins the
    /// distributed trace: its execution (and, on a serve backend, every
    /// shard probe) is emitted into `sink` as children of the server span.
    fn topk(
        &self,
        q: ServeQuery,
        span: Option<(TraceId, SpanId)>,
        sink: &SpanSink,
    ) -> Result<TopKResponse, (ErrCode, String)> {
        match self {
            Backend::Serve(e) => {
                let (topk, route): (TopK, Route) = match span {
                    Some((trace, parent)) => e.query_spanned(q, trace, parent, sink),
                    None => e.query_routed(q),
                }
                .map_err(|e| (ErrCode::Engine, e.to_string()))?;
                let eps_used = e.planner().profile(route).and_then(|p| p.eps);
                Ok(TopKResponse { topk, route, eps_used, appends_applied: 0 })
            }
            Backend::Live(lock) => {
                let e = lock.read().unwrap_or_else(std::sync::PoisonError::into_inner);
                let (topk, route): (TopK, Route) = match span {
                    Some((trace, parent)) => e.query_spanned(q, trace, parent, sink),
                    None => e.query_routed(q),
                }
                .map_err(|e| (ErrCode::Engine, e.to_string()))?;
                let f = e.freshness();
                let eps_used = e
                    .planner()
                    .profile(route)
                    .map(|p| p.revalidate(f.built_mass, f.live_mass))
                    .and_then(|p| p.eps);
                Ok(TopKResponse { topk, route, eps_used, appends_applied: e.appends() })
            }
        }
    }

    /// Apply one wire APPEND_BATCH: records are WAL-group-committed by
    /// the live engine and land in the owning shards' columnar tails
    /// (one shared offset table + `t`/`v` column pushes per record —
    /// the same arrays the batch rescoring kernels later stream).
    fn append(&self, recs: &[AppendRecord]) -> Result<AppendOk, (ErrCode, String)> {
        match self {
            Backend::Serve(_) => Err((
                ErrCode::Unsupported,
                "APPEND_BATCH requires a live backend; this server is read-only".to_string(),
            )),
            Backend::Live(lock) => {
                let mut e = lock.write().unwrap_or_else(std::sync::PoisonError::into_inner);
                let before = e.appends();
                e.append_batch(recs).map_err(|err| (ErrCode::Engine, err.to_string()))?;
                // Saturating: the lifetime counter is monotone today, but a
                // raw subtraction here would turn any future counter reset
                // (recovery, truncation) into a u64 wrap on the wire.
                Ok(AppendOk {
                    accepted: e.appends().saturating_sub(before),
                    total_appends: e.appends(),
                })
            }
        }
    }

    fn checkpoint(&self) -> Result<(), (ErrCode, String)> {
        match self {
            Backend::Serve(_) => Err((
                ErrCode::Unsupported,
                "CHECKPOINT requires a live backend; this server is read-only".to_string(),
            )),
            Backend::Live(lock) => lock
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .checkpoint()
                .map_err(|err| (ErrCode::Engine, err.to_string())),
        }
    }

    fn stats(&self, shared: &Shared) -> StatsBody {
        let (live_backend, workers, queries, appends, (t_min, t_max)) = match self {
            Backend::Serve(e) => {
                let r = e.report();
                (0, r.workers as u32, r.queries, 0, e.domain())
            }
            Backend::Live(lock) => {
                let e = lock.read().unwrap_or_else(std::sync::PoisonError::into_inner);
                let r = e.report();
                let set = e.live_set();
                (1, r.workers as u32, r.queries, r.appends, (set.t_min(), set.t_max()))
            }
        };
        StatsBody {
            live_backend,
            workers,
            queries,
            appends,
            frames_in: shared.frames_in.load(Ordering::Relaxed),
            frames_out: shared.frames_out.load(Ordering::Relaxed),
            busy_rejections: shared.busy_rejections.load(Ordering::Relaxed),
            connections: shared.connections.load(Ordering::Relaxed),
            t_min,
            t_max,
        }
    }
}

/// Failures starting or running a [`NetServer`].
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure (bind, local_addr, …).
    Io(std::io::Error),
    /// The backend builder closure failed on the engine thread.
    Backend(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "io: {e}"),
            ServerError::Backend(e) => write!(f, "backend build failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

enum EngineOp {
    TopK(ServeQuery),
    Append(Vec<AppendRecord>),
    Checkpoint,
    Stats,
    Metrics,
    Trace,
}

struct Job {
    request_id: u64,
    op: EngineOp,
    resp: Sender<OutFrame>,
    /// The open `server.request` span when the request carried trace
    /// context; finished by the engine worker once the response frame is
    /// built, so it covers queue + execution + encode.
    span: Option<ActiveSpan>,
    /// When admission control accepted the frame (queue-time attribution
    /// and the SLO latency sample both measure from here).
    admitted_at: Instant,
}

/// One encoded frame queued for a connection's writer. `releases_slot`
/// marks responses to *admitted* engine ops: their admission-control slot
/// is released only once the writer has actually put the bytes on the
/// wire (or the connection died), so a client that pipelines requests but
/// never reads responses runs out of slots — and gets typed BUSY — instead
/// of growing the writer queue without bound.
struct OutFrame {
    bytes: Vec<u8>,
    releases_slot: bool,
}

impl OutFrame {
    fn inline(frame: &Frame) -> Self {
        Self { bytes: frame.encode(), releases_slot: false }
    }

    fn engine(frame: &Frame) -> Self {
        Self { bytes: frame.encode(), releases_slot: true }
    }
}

/// Cross-thread server state: the stop flag, admission counter, and the
/// observability counters STATS reports.
struct Shared {
    stop: AtomicBool,
    in_flight: AtomicUsize,
    max_in_flight: usize,
    active_conns: AtomicUsize,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    busy_rejections: AtomicU64,
    connections: AtomicU64,
    obs: NetObs,
    /// Where traced requests' span trees land (the TRACE op drains it).
    sink: SpanSink,
    /// TOPK burn-rate tracking against [`NetConfig::slo`]; BUSY refusals
    /// burn budget as errors.
    slo: SloTracker,
}

/// Network-tier metric handles, resolved once at server start against the
/// process [`Registry::global`]. The STATS wire op keeps reading the raw
/// atomics in [`Shared`]; a METRICS scrape mirrors them into gauges so
/// one exposition carries every tier.
struct NetObs {
    /// Time to extract one complete frame from the stream, µs.
    decode_us: Histogram,
    /// Time to serialize one engine response frame, µs.
    encode_us: Histogram,
    /// Frames bounced by admission control (`max_in_flight`).
    admission_busy: Counter,
    /// Whole connections turned away at the connection cap.
    refused_connections: Counter,
}

impl NetObs {
    fn attach(registry: &Registry) -> Self {
        Self {
            decode_us: registry.histogram(
                "chronorank_net_frame_decode_us",
                "time extracting one complete frame from the byte stream, microseconds",
            ),
            encode_us: registry.histogram(
                "chronorank_net_frame_encode_us",
                "time serializing one engine response frame, microseconds",
            ),
            admission_busy: registry.counter(
                "chronorank_net_admission_busy_total",
                "frames refused with BUSY by admission control (max_in_flight)",
            ),
            refused_connections: registry.counter(
                "chronorank_net_refused_connections_total",
                "connections refused at the connection cap",
            ),
        }
    }
}

impl Shared {
    /// Mirror the wire counters into registry gauges (METRICS scrape).
    fn sync_obs(&self, registry: &Registry) {
        let g = |name: &str, help: &str, v: u64| registry.gauge(name, help).set_u64(v);
        g(
            "chronorank_net_frames_in",
            "request frames accepted",
            self.frames_in.load(Ordering::Relaxed),
        );
        g(
            "chronorank_net_frames_out",
            "response frames written",
            self.frames_out.load(Ordering::Relaxed),
        );
        g(
            "chronorank_net_busy_rejections",
            "BUSY refusals (admission + connection cap)",
            self.busy_rejections.load(Ordering::Relaxed),
        );
        g(
            "chronorank_net_connections",
            "connections accepted (lifetime)",
            self.connections.load(Ordering::Relaxed),
        );
        g(
            "chronorank_net_active_connections",
            "connections currently open",
            self.active_conns.load(Ordering::SeqCst) as u64,
        );
        g(
            "chronorank_net_in_flight",
            "engine frames admitted but not yet answered",
            self.in_flight.load(Ordering::SeqCst) as u64,
        );
    }
}

/// A running wire-protocol server. Dropping it shuts it down cleanly
/// (prefer calling [`NetServer::shutdown`] to observe join completion).
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    engine_workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<ConnRegistry>>,
}

#[derive(Default)]
struct ConnRegistry {
    streams: Vec<TcpStream>,
    handles: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `config.addr` and serve the backend produced by `build`.
    ///
    /// The backend is built once, shared behind an `Arc`, and drained by
    /// [`NetConfig::engine_threads`] worker threads (the engines are
    /// `Send + Sync`); a build failure is reported here, not deferred.
    pub fn start<F>(config: NetConfig, build: F) -> Result<Self, ServerError>
    where
        F: FnOnce() -> Result<Backend, String> + Send + 'static,
    {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            max_in_flight: config.max_in_flight,
            active_conns: AtomicUsize::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            obs: NetObs::attach(Registry::global()),
            sink: SpanSink::global().clone(),
            slo: SloTracker::new(config.slo),
        });
        let backend = Arc::new(build().map_err(ServerError::Backend)?);
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut engine_workers = Vec::with_capacity(config.engine_threads.max(1));
        for i in 0..config.engine_threads.max(1) {
            let backend = Arc::clone(&backend);
            let rx = Arc::clone(&job_rx);
            let engine_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("chronorank-net-engine-{i}"))
                .spawn(move || engine_main(&backend, &rx, &engine_shared))
                .map_err(ServerError::Io)?;
            engine_workers.push(handle);
        }
        let conns: Arc<Mutex<ConnRegistry>> = Arc::default();
        let acceptor_shared = Arc::clone(&shared);
        let acceptor_conns = Arc::clone(&conns);
        let max_connections = config.max_connections;
        let acceptor = std::thread::Builder::new()
            .name("chronorank-net-accept".to_string())
            .spawn(move || {
                acceptor_main(
                    &listener,
                    &job_tx,
                    &acceptor_shared,
                    &acceptor_conns,
                    max_connections,
                );
            })
            .map_err(ServerError::Io)?;
        Ok(Self { addr, shared, acceptor: Some(acceptor), engine_workers, conns })
    }

    /// [`NetServer::start`] over a read-only [`ServeEngine`] built from
    /// `set`.
    pub fn start_serve(
        set: TemporalSet,
        engine: ServeConfig,
        net: NetConfig,
    ) -> Result<Self, ServerError> {
        Self::start(net, move || {
            ServeEngine::new(&set, engine).map(Backend::from).map_err(|e| e.to_string())
        })
    }

    /// [`NetServer::start`] over a live [`IngestEngine`] seeded with
    /// `seed` (WAL recovery per `engine.wal_dir`).
    pub fn start_live(
        seed: TemporalSet,
        engine: LiveConfig,
        net: NetConfig,
    ) -> Result<Self, ServerError> {
        Self::start(net, move || {
            IngestEngine::new(&seed, engine).map(Backend::from).map_err(|e| e.to_string())
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close every connection, drain the engine, and join
    /// every thread the server spawned.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept() so the acceptor sees the flag; the
        // acceptor holds the prototype job sender, so joining it is what
        // lets the engine channel start draining toward closure. A bind
        // to an unspecified address (0.0.0.0 / ::) is not connectable as
        // such on every platform — wake it via loopback instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        TcpStream::connect(wake).ok();
        if let Some(h) = self.acceptor.take() {
            h.join().ok();
        }
        let (streams, handles) = {
            let mut reg = self.conns.lock().expect("registry lock");
            (std::mem::take(&mut reg.streams), std::mem::take(&mut reg.handles))
        };
        for s in streams {
            s.shutdown(Shutdown::Both).ok();
        }
        for h in handles {
            h.join().ok();
        }
        for h in self.engine_workers.drain(..) {
            h.join().ok();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Thread body of one engine worker: pull a job off the shared queue,
/// answer it against the shared backend, hand the frame to the writer.
fn engine_main(backend: &Backend, jobs: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // Idle workers queue on the mutex; the channel closing (acceptor
        // gone at shutdown) ends the loop for everyone.
        let job = {
            let rx = jobs.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return,
            }
        };
        let queue_us = elapsed_us(job.admitted_at);
        let span_ctx = job.span.as_ref().map(|s| (s.trace(), s.id()));
        let is_topk = matches!(job.op, EngineOp::TopK(_));
        let frame = match job.op {
            EngineOp::TopK(q) => match backend
                .topk(q, span_ctx, &shared.sink)
                .and_then(|resp| resp.encode().map_err(|e| (ErrCode::Engine, e.to_string())))
            {
                Ok(body) => Frame::new(OpCode::TopKOk, job.request_id, body),
                Err(e) => error_frame(job.request_id, e.0, e.1),
            },
            EngineOp::Append(recs) => match backend.append(&recs) {
                Ok(ok) => Frame::new(OpCode::AppendOk, job.request_id, ok.encode()),
                Err(e) => error_frame(job.request_id, e.0, e.1),
            },
            EngineOp::Checkpoint => match backend.checkpoint() {
                Ok(()) => Frame::new(OpCode::CheckpointOk, job.request_id, Vec::new()),
                Err(e) => error_frame(job.request_id, e.0, e.1),
            },
            EngineOp::Stats => {
                Frame::new(OpCode::StatsOk, job.request_id, backend.stats(shared).encode())
            }
            EngineOp::Metrics => match render_metrics(backend, shared) {
                Ok(text) => Frame::new(OpCode::MetricsOk, job.request_id, text.into_bytes()),
                Err(e) => error_frame(job.request_id, e.0, e.1),
            },
            EngineOp::Trace => match render_trace(shared) {
                Ok(text) => Frame::new(OpCode::TraceOk, job.request_id, text.into_bytes()),
                Err(e) => error_frame(job.request_id, e.0, e.1),
            },
        };
        let failed = frame.opcode == OpCode::Error;
        // TOPK is the serving path the SLO objective covers: one latency
        // sample per answered query, measured from admission (queue time
        // burns budget too), with engine failures burning as errors.
        if is_topk {
            shared.slo.observe(elapsed_us(job.admitted_at), failed);
        }
        if let Some(mut span) = job.span {
            span.attr("queue_us", AttrValue::U64(queue_us));
            span.attr("ok", AttrValue::Bool(!failed));
            span.finish();
        }
        // The writer releases the admission slot once the bytes reach the
        // wire; if the connection is already gone, release it here.
        let t_enc = Instant::now();
        let out = OutFrame::engine(&frame);
        shared.obs.encode_us.record(elapsed_us(t_enc));
        if job.resp.send(out).is_err() {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Answer one METRICS scrape: pull every backend's counters into the
/// process registry (serve/live gauges, wire-tier gauges), then render
/// the whole registry as text exposition.
fn render_metrics(backend: &Backend, shared: &Shared) -> Result<String, (ErrCode, String)> {
    let registry = Registry::global();
    match backend {
        Backend::Serve(e) => e.sync_obs(),
        Backend::Live(lock) => {
            lock.read().unwrap_or_else(std::sync::PoisonError::into_inner).sync_obs()
        }
    }
    shared.sync_obs(registry);
    shared.slo.sync_gauges(registry);
    let text = registry.render();
    if text.len() > MAX_PAYLOAD as usize {
        return Err((ErrCode::Engine, "metric exposition exceeds the frame payload bound".into()));
    }
    Ok(text)
}

/// Answer one TRACE scrape: SLO burn-rate status plus the span sink's
/// contents, drained (take-and-clear — a span is reported exactly once)
/// and rendered as one structured JSON object.
fn render_trace(shared: &Shared) -> Result<String, (ErrCode, String)> {
    let spans = shared.sink.drain();
    let text = format!(
        "{{\"slo\":{},\"spans\":{},\"spans_dropped\":{}}}",
        shared.slo.status().to_json(),
        spans_json(&spans),
        shared.sink.dropped(),
    );
    if text.len() > MAX_PAYLOAD as usize {
        return Err((ErrCode::Engine, "trace dump exceeds the frame payload bound".into()));
    }
    Ok(text)
}

fn error_frame(request_id: u64, code: ErrCode, message: String) -> Frame {
    // A message too large for the wire's u32 length field (or the frame
    // payload bound) degrades to a short placeholder — the client still
    // gets the typed code, which is the part that drives its behavior.
    let body = ErrorBody { code, message }
        .encode()
        .ok()
        .filter(|b| b.len() <= MAX_PAYLOAD as usize)
        .unwrap_or_else(|| {
            ErrorBody { code, message: "(error message too large for one frame)".into() }
                .encode()
                .expect("short message always encodes")
        });
    Frame::new(OpCode::Error, request_id, body)
}

fn acceptor_main(
    listener: &TcpListener,
    job_tx: &Sender<Job>,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<ConnRegistry>>,
    max_connections: usize,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Transient accept failures (fd exhaustion, aborted
                // handshakes) must not kill the acceptor: back off briefly
                // and retry until told to stop.
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if shared.active_conns.load(Ordering::SeqCst) >= max_connections {
            // One best-effort typed refusal, then close: the client learns
            // *why*, instead of seeing an unexplained reset.
            let mut stream = stream;
            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            shared.obs.refused_connections.inc();
            let refusal = error_frame(
                0,
                ErrCode::Busy,
                format!("connection limit ({max_connections}) reached"),
            );
            if stream.write_all(&refusal.encode()).is_ok() {
                // FIN first, then briefly drain whatever the client already
                // sent: closing with unread inbound bytes turns into an RST
                // on many stacks, which would destroy the refusal in flight.
                stream.shutdown(Shutdown::Write).ok();
                stream.set_read_timeout(Some(std::time::Duration::from_millis(250))).ok();
                let mut sink = [0u8; 1024];
                while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
            }
            continue;
        }
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        shared.connections.fetch_add(1, Ordering::Relaxed);
        stream.set_nodelay(true).ok();
        spawn_connection(stream, job_tx.clone(), Arc::clone(shared), conns);
    }
}

fn spawn_connection(
    stream: TcpStream,
    job_tx: Sender<Job>,
    shared: Arc<Shared>,
    conns: &Arc<Mutex<ConnRegistry>>,
) {
    let (Ok(write_half), Ok(registry_handle)) = (stream.try_clone(), stream.try_clone()) else {
        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        return;
    };
    let (out_tx, out_rx) = channel::<OutFrame>();
    let writer_shared = Arc::clone(&shared);
    let Ok(writer) = std::thread::Builder::new()
        .name("chronorank-net-write".to_string())
        .spawn(move || writer_main(write_half, &out_rx, &writer_shared))
    else {
        // Roll back the acceptor's reservation: the decrement below lives
        // in the reader closure, which will never run.
        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        return;
    };
    let reader_shared = Arc::clone(&shared);
    let reader =
        std::thread::Builder::new().name("chronorank-net-read".to_string()).spawn(move || {
            reader_main(stream, &job_tx, &out_tx, &reader_shared);
            reader_shared.active_conns.fetch_sub(1, Ordering::SeqCst);
        });
    if reader.is_err() {
        // The dropped closure never ran; undo its side of the accounting.
        // Dropping it also hung up out_tx, so the writer exits on its own.
        shared.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
    let mut reg = conns.lock().expect("registry lock");
    // Reap finished connections so long-lived servers don't accumulate
    // dead handles or stale stream clones.
    reg.handles.retain(|h| !h.is_finished());
    reg.streams.retain(|s| s.peer_addr().is_ok());
    reg.streams.push(registry_handle);
    reg.handles.push(writer);
    reg.handles.extend(reader);
}

fn writer_main(stream: TcpStream, frames: &Receiver<OutFrame>, shared: &Shared) {
    let mut out = std::io::BufWriter::new(stream);
    loop {
        let frame = match frames.try_recv() {
            Ok(f) => f,
            Err(TryRecvError::Empty) => {
                // Queue drained: flush the batch, then block for more.
                if out.flush().is_err() {
                    break;
                }
                match frames.recv() {
                    Ok(f) => f,
                    Err(_) => break,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        let wrote = out.write_all(&frame.bytes).is_ok();
        // Wire-level backpressure: the slot opens only now, after the
        // response actually left (or irrecoverably failed), so a client
        // that never reads keeps at most `max_in_flight` responses queued.
        if frame.releases_slot {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        if !wrote {
            break;
        }
        shared.frames_out.fetch_add(1, Ordering::Relaxed);
    }
    // The writer owns the connection's end of life: flush the goodbye and
    // actively close the socket — the registry may still hold a clone, so
    // dropping the fd alone would leave the peer waiting — then block
    // until every producer (reader, in-flight engine jobs) has hung up,
    // releasing the admission slots of any responses that never made it.
    out.flush().ok();
    if let Ok(stream) = out.into_inner() {
        stream.shutdown(Shutdown::Both).ok();
    }
    while let Ok(frame) = frames.recv() {
        if frame.releases_slot {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn reader_main(
    mut stream: TcpStream,
    job_tx: &Sender<Job>,
    out_tx: &Sender<OutFrame>,
    shared: &Shared,
) {
    let mut decoder = Decoder::new();
    let mut scratch = [0u8; 16 * 1024];
    'conn: loop {
        let n = match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        decoder.feed(&scratch[..n]);
        loop {
            let t_dec = Instant::now();
            let frame = match decoder.next_frame() {
                Ok(Some(f)) => {
                    shared.obs.decode_us.record(elapsed_us(t_dec));
                    f
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is lost; one typed goodbye, then close.
                    let goodbye = error_frame(0, ErrCode::BadRequest, e.to_string());
                    out_tx.send(OutFrame::inline(&goodbye)).ok();
                    break 'conn;
                }
            };
            shared.frames_in.fetch_add(1, Ordering::Relaxed);
            if !dispatch(frame, job_tx, out_tx, shared) {
                break 'conn;
            }
        }
    }
    // Stop reading only; the writer still owes the peer any buffered
    // responses (including the typed goodbye above) and closes the
    // socket itself once every producer has hung up.
    stream.shutdown(Shutdown::Read).ok();
}

/// Handle one decoded frame. Returns `false` when the connection must
/// close (writer gone or server stopping).
fn dispatch(
    frame: Frame,
    job_tx: &Sender<Job>,
    out_tx: &Sender<OutFrame>,
    shared: &Shared,
) -> bool {
    let id = frame.request_id;
    let (op, ctx) = match frame.opcode {
        OpCode::Ping => {
            let pong = Frame::new(OpCode::Pong, id, frame.payload);
            return out_tx.send(OutFrame::inline(&pong)).is_ok();
        }
        OpCode::TopK => match TopKRequest::decode_traced(&frame.payload) {
            Ok((req, ctx)) => (EngineOp::TopK(req.0), ctx),
            Err(e) => return send_bad_request(out_tx, id, &e),
        },
        OpCode::AppendBatch => match crate::frame::decode_append_batch_traced(&frame.payload) {
            Ok((recs, ctx)) => (EngineOp::Append(recs), ctx),
            Err(e) => return send_bad_request(out_tx, id, &e),
        },
        OpCode::Checkpoint => (EngineOp::Checkpoint, None),
        OpCode::Stats => (EngineOp::Stats, None),
        OpCode::Metrics => (EngineOp::Metrics, None),
        OpCode::Trace => (EngineOp::Trace, None),
        // A response opcode arriving at the server is a confused client.
        other => {
            let msg = format!("{other:?} is not a request opcode");
            return out_tx
                .send(OutFrame::inline(&error_frame(id, ErrCode::BadRequest, msg)))
                .is_ok();
        }
    };
    // Admission control: reserve an in-flight slot or answer BUSY now.
    let admitted = shared
        .in_flight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
            (cur < shared.max_in_flight).then_some(cur + 1)
        })
        .is_ok();
    if !admitted {
        shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
        shared.obs.admission_busy.inc();
        // A refused TOPK is a failed request from the client's point of
        // view: it burns SLO error budget even though no latency accrued.
        if matches!(op, EngineOp::TopK(_)) {
            shared.slo.observe(0, true);
        }
        let msg = format!("{} frames in flight (limit)", shared.max_in_flight);
        return out_tx.send(OutFrame::inline(&error_frame(id, ErrCode::Busy, msg))).is_ok();
    }
    // The request joins its originating trace here: the server span's
    // parent is the *client's* span, so the cross-process tree is joined
    // by construction. It stays open until the engine worker answers.
    let span = ctx.map(|ctx| {
        let mut span =
            shared.sink.child(TraceId(ctx.trace_id), SpanId(ctx.parent_span), "server.request");
        span.attr(
            "op",
            AttrValue::Sym(match &op {
                EngineOp::TopK(_) => "topk",
                EngineOp::Append(_) => "append",
                _ => "other",
            }),
        );
        span
    });
    if job_tx
        .send(Job { request_id: id, op, resp: out_tx.clone(), span, admitted_at: Instant::now() })
        .is_err()
    {
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        let msg = "server is shutting down".to_string();
        out_tx.send(OutFrame::inline(&error_frame(id, ErrCode::Shutdown, msg))).ok();
        return false;
    }
    true
}

fn send_bad_request(out_tx: &Sender<OutFrame>, id: u64, e: &FrameError) -> bool {
    out_tx.send(OutFrame::inline(&error_frame(id, ErrCode::BadRequest, e.to_string()))).is_ok()
}
