//! The ingest shard: one thread owning one partition's live state.
//!
//! A shard holds the *mutable* side of its partition — the live
//! [`TemporalSet`] (appends applied immediately), the per-object frozen
//! edge of the currently published generation, and the result cache — and
//! probes its frozen side directly: the published generation is an
//! immutable `Arc`-shared snapshot ([`crate::generation`]), so candidate
//! fetches are plain in-thread calls, not channel round trips.
//!
//! ## Query = frozen candidates ∪ tail, exactly rescored
//!
//! For `top-k(t1, t2, k)` the shard fetches the frozen index's top
//! `k + |touched| + slack` candidates (where *touched* are the objects
//! whose appended tail overlaps the interval), unions the touched objects
//! in, rescores every candidate **exactly** on the live curves, and ranks.
//! Any object missing from that candidate set is beaten by at least `k`
//! candidates (each non-touched object scores identically in the frozen
//! and live orders, and only touched objects can move), so exact routes
//! are exact-fresh at every point between rebuilds, and approximate
//! routes keep their frozen `ε·M_built` candidate guarantee with exact
//! scores on top.
//!
//! ## Staleness-audited caching
//!
//! Cacheable routes (APPX1/APPX2) answer over the *snapped* interval, so
//! answers are cached per `(B(t1), B(t2), k, route)`. An append whose new
//! segment starts before a cached entry's snapped right edge adds its mass
//! to the entry's staleness account; at lookup time the entry is served
//! only while `ε·M_built + staleness ≤ ε_query · M_live` — otherwise it is
//! invalidated and recomputed. Epoch swaps clear the cache outright.

use crate::config::LiveConfig;
use crate::generation::{generation_main, GenBuildSpec, GenParts, Generation};
use crate::obs::ShardObs;
use crate::report::PauseHistogram;
use chronorank_core::{AppendRecord, ObjectId, TemporalSet};
use chronorank_curve::{ColumnarTail, Segment};
use chronorank_serve::{panic_message, LruCache, Route, RouteProfiles, ServeQuery};
use chronorank_storage::IoStats;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One routed query, as sent to every shard. Carries the reply sender of
/// the query that spawned it, so concurrent callers can never receive
/// each other's answers.
#[derive(Debug, Clone)]
pub(crate) struct LiveJob {
    pub qid: u64,
    pub query: ServeQuery,
    pub route: Route,
    pub reply: Sender<ShardReply>,
}

/// Coordinator (and generation builders) → shard messages.
pub(crate) enum ToShard {
    /// Apply a batch of already-durable appends (object ids are **local**).
    Apply(Vec<AppendRecord>),
    /// Answer one routed query.
    Query(LiveJob),
    /// Answer an admitted window of routed queries in one columnar pass:
    /// jobs sharing a snapped interval (or a raw interval, for the
    /// non-snapping routes) probe the frozen generation once and share the
    /// rescored answer. One [`ShardReply`] still goes out per job.
    QueryBatch(Vec<LiveJob>),
    /// Checkpoint gather: reply with the installed frozen generation and
    /// its frozen edges. Doubles as the barrier — the FIFO mailbox means
    /// every apply sent before this message is applied by the reply.
    Checkpoint(Sender<ShardCheckpoint>),
    /// A generation build finished (success or failure). On success the
    /// payload is the finished, immediately shareable snapshot.
    GenReady {
        generation: u64,
        result: Result<Arc<Generation>, String>,
    },
    Shutdown,
}

/// The channel bundle one shard thread lives on.
pub(crate) struct ShardChannels {
    /// The mailbox (engine messages + generation-build announcements).
    pub rx: Receiver<ToShard>,
    /// Sender for the same mailbox, cloned into spawned builders.
    pub self_tx: Sender<ToShard>,
    /// One-shot build handshake back to the engine.
    pub build_tx: Sender<BuildOutcome>,
}

/// One shard's contribution to a checkpoint image: the installed frozen
/// generation (`None` only before bootstrap completes) plus the frozen
/// edges its snapshot was cut at.
pub(crate) struct ShardCheckpoint {
    pub shard: usize,
    pub gen: Option<Arc<Generation>>,
    pub frozen_end: Vec<f64>,
}

/// Shard → caller answer for one query.
pub(crate) struct ShardReply {
    pub qid: u64,
    pub shard: usize,
    /// Shard-local top-k with **global** object ids, descending score.
    pub result: Result<Vec<(ObjectId, f64)>, String>,
    /// Piggybacked live statistics (always current; cache hit/miss counts
    /// ride in here rather than per-reply flags).
    pub status: ShardStatus,
}

/// Everything the coordinator needs to know about a shard's live state,
/// piggybacked on every reply so planner freshness never goes stale.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardStatus {
    /// Shard-local monotone stamp (one per status emitted). Concurrent
    /// `&self` queries gather on private channels, so two replies can
    /// reach the engine in either order — the stamp lets it keep only
    /// the newest view instead of regressing to a superseded one.
    pub seq: u64,
    pub generation: u64,
    pub built_mass: f64,
    pub tail_segments: u64,
    pub rebuild_in_flight: bool,
    pub io: IoStats,
    pub profiles: RouteProfiles,
    pub rebuilds: u64,
    pub build_secs: f64,
    pub swap_pause: PauseHistogram,
    pub queries_during_rebuild: u64,
    pub cache_hits: u64,
    pub cache_lookups: u64,
    pub cache_invalidations: u64,
    pub size_bytes: u64,
    /// Heap bytes held by the columnar append log (tail columns + index
    /// lists).
    pub tail_bytes: u64,
    /// Objects with a non-empty appended tail.
    pub tail_objects: u64,
}

/// Shard → coordinator build handshake.
pub(crate) struct BuildOutcome {
    pub shard: usize,
    pub result: Result<ShardInfo, String>,
}

/// Per-shard facts for the planner.
pub(crate) struct ShardInfo {
    pub m: u64,
    pub n: u64,
    pub status: ShardStatus,
}

/// Key of the staleness-audited result cache (cacheable routes snap to
/// breakpoints before answering, see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    b1: u32,
    b2: u32,
    k: u32,
    route: Route,
}

/// A cached snapped answer plus its staleness account.
struct Cached {
    /// Global-id answer, descending score.
    entries: Vec<(ObjectId, f64)>,
    /// Snapped right edge — appends starting before this time affect it.
    snap_t2: f64,
    /// Absolute mass appended (potentially) inside the snapped interval
    /// since this entry was computed. `Cell` so the apply path can charge
    /// it during a non-removing `retain` walk. (The cache is shard-thread
    /// private — mutable state stays single-owner; only the *frozen*
    /// generations are shared across threads.)
    stale: Cell<f64>,
}

/// The published generation plus its (already finished) builder thread,
/// joined at the next swap.
struct Installed {
    gen: Arc<Generation>,
    join: Option<JoinHandle<()>>,
}

/// A build in flight: the builder announces the finished `Arc` through
/// the shard's own mailbox and exits.
struct PendingGen {
    generation: u64,
    join: Option<JoinHandle<()>>,
    /// Per-object curve end at snapshot time (the new frozen edge).
    frozen_end: Vec<f64>,
    /// `applied` counter at snapshot time.
    stamp_applied: u64,
}

struct ShardState {
    shard: usize,
    config: LiveConfig,
    /// The live partition (local dense ids) in columnar form: epoch-frozen
    /// base columns plus the mutable append log. Appends land immediately;
    /// rescoring streams the shared `t`/`v` columns.
    live: ColumnarTail,
    /// `M` of the live partition, maintained incrementally with exactly
    /// the arithmetic [`TemporalSet::append_segment`] uses, so rebuild
    /// triggers and staleness budgets behave as the row-form set did.
    live_mass: f64,
    /// Local dense id → global id.
    global_ids: Vec<ObjectId>,
    /// Per-object frozen edge of the published generation.
    frozen_end: Vec<f64>,
    gen: Option<Installed>,
    pending: Option<PendingGen>,
    cache: Option<LruCache<CacheKey, Cached>>,
    /// Mailbox sender, cloned into every spawned generation build.
    self_tx: Sender<ToShard>,
    // --- counters ---
    applied: u64,
    gen_applied: u64,
    rebuilds: u64,
    build_secs: f64,
    swap_pause: PauseHistogram,
    queries_during_rebuild: u64,
    cache_hits: u64,
    cache_lookups: u64,
    cache_invalidations: u64,
    retired_io: IoStats,
    /// Monotone stamp for emitted [`ShardStatus`]es (see its `seq` doc).
    status_seq: u64,
    /// First unrecoverable error (reported on every later query).
    poisoned: Option<String>,
    /// Process-registry histograms this thread alone can feed.
    obs: ShardObs,
}

impl ShardState {
    fn new(
        shard: usize,
        subset: TemporalSet,
        global_ids: Vec<ObjectId>,
        config: LiveConfig,
        self_tx: Sender<ToShard>,
        obs: ShardObs,
    ) -> Self {
        let m = subset.num_objects();
        let cache = (config.cache_capacity > 0).then(|| LruCache::new(config.cache_capacity));
        Self {
            shard,
            config,
            live: subset.to_columnar(),
            live_mass: subset.total_mass(),
            global_ids,
            frozen_end: vec![f64::NEG_INFINITY; m],
            gen: None,
            pending: None,
            cache,
            self_tx,
            applied: 0,
            gen_applied: 0,
            rebuilds: 0,
            build_secs: 0.0,
            swap_pause: PauseHistogram::default(),
            queries_during_rebuild: 0,
            cache_hits: 0,
            cache_lookups: 0,
            cache_invalidations: 0,
            retired_io: IoStats::default(),
            status_seq: 0,
            poisoned: None,
            obs,
        }
    }

    /// Spawn a generation build over the current live state. The build
    /// runs entirely off this thread; `GenReady` arrives through the
    /// mailbox with the finished `Arc` and the builder exits.
    fn spawn_generation(&mut self, generation: u64) {
        // Materialize a row-form snapshot from the columns (the index
        // builders consume `TemporalSet`); point bits are copied verbatim.
        let snapshot = match TemporalSet::from_columnar(&self.live) {
            Ok(s) => s,
            Err(e) => {
                self.poisoned = Some(format!("generation snapshot: {e}"));
                return;
            }
        };
        let frozen_end = (0..self.live.num_objects()).map(|i| self.live.end_time(i)).collect();
        let spec = GenBuildSpec {
            methods: self.config.methods,
            approx: self.config.approx,
            store: self.config.store,
        };
        let ready_tx = self.self_tx.clone();
        let join = std::thread::Builder::new()
            .name(format!("chronorank-live-gen{}-{}", self.shard, generation))
            .spawn(move || generation_main(generation, snapshot, spec, ready_tx))
            .ok();
        if join.is_none() {
            self.poisoned = Some("failed to spawn generation build".into());
            return;
        }
        self.pending =
            Some(PendingGen { generation, join, frozen_end, stamp_applied: self.applied });
    }

    /// Epoch swap: install a finished generation. Everything here is the
    /// reader-visible pause — an `Arc` replacement plus bookkeeping — so
    /// it is measured into the histogram.
    fn install(&mut self, generation: u64, gen: Arc<Generation>) {
        let Some(pending) = self.pending.take() else { return };
        if pending.generation != generation {
            self.pending = Some(pending);
            return;
        }
        let t0 = Instant::now();
        if let Some(mut old) = self.gen.take() {
            self.retired_io += old.gen.io_total();
            if let Some(join) = old.join.take() {
                join.join().ok(); // builder exited after its announce
            }
        }
        self.frozen_end = pending.frozen_end;
        self.gen_applied = pending.stamp_applied;
        self.build_secs += gen.meta.build_secs;
        self.obs.rebuild_us.record((gen.meta.build_secs * 1e6) as u64);
        self.gen = Some(Installed { gen, join: pending.join });
        // The epoch swap also compacts the columnar append log into the
        // contiguous base columns — the tail the new generation absorbed
        // no longer needs its gather indirection (a storage move only;
        // every point and every integral keeps its bits).
        self.live.freeze();
        if let Some(cache) = &mut self.cache {
            cache.clear(); // superseded frozen parts
        }
        if generation > 0 {
            self.rebuilds += 1;
            let pause_us = t0.elapsed().as_micros() as u64;
            self.swap_pause.record(pause_us);
            self.obs.swap_pause_us.record(pause_us);
        }
    }

    /// Apply one durable batch to the live state, charge staleness to the
    /// overlapped cache entries, and trigger the §4 rebuild policy.
    fn apply(&mut self, recs: &[AppendRecord]) {
        if recs.is_empty() {
            return;
        }
        let mass_before = self.live_mass;
        let mut batch_min_t0 = f64::INFINITY;
        for rec in recs {
            if rec.object as usize >= self.live.num_objects() {
                self.poisoned = Some(format!("apply: no such object: {}", rec.object));
                return;
            }
            // Columnar append; the returned previous endpoint feeds the
            // same incremental mass arithmetic `TemporalSet` uses.
            let (prev_t, prev_v) = match self.live.append(rec.object as usize, rec.t, rec.v) {
                Ok(prev) => prev,
                Err(e) => {
                    self.poisoned = Some(format!("apply: curve: {e}"));
                    return;
                }
            };
            let seg = Segment::new(prev_t, prev_v, rec.t, rec.v);
            self.live_mass += seg.abs_integral_clipped(prev_t, rec.t);
            batch_min_t0 = batch_min_t0.min(prev_t);
        }
        self.applied += recs.len() as u64;
        let batch_mass = (self.live_mass - mass_before).max(0.0);
        if let Some(cache) = &mut self.cache {
            cache.retain(|_, v| {
                if v.snap_t2 > batch_min_t0 {
                    v.stale.set(v.stale.get() + batch_mass);
                }
                true
            });
        }
        // Rebuild trigger: geometric mass doubling (core's §4 policy) or a
        // full tail.
        if self.pending.is_none() {
            if let Some(installed) = &self.gen {
                let tail = self.applied - self.gen_applied;
                let mass_due = self.live_mass
                    >= self.config.rebuild.mass_factor * installed.gen.meta.built_mass;
                if mass_due || tail >= self.config.rebuild.max_tail_segments as u64 {
                    self.spawn_generation(installed.gen.meta.generation + 1);
                }
            }
        }
    }

    /// Answer one routed query (see module docs for the merge contract).
    fn answer(&mut self, job: &LiveJob) -> Result<Vec<(ObjectId, f64)>, String> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.pending.is_some() {
            self.queries_during_rebuild += 1;
        }
        let q = job.query;
        let gen = match &self.gen {
            Some(installed) => Arc::clone(&installed.gen),
            None => return Err("no generation published".into()),
        };
        // APPX1/APPX2 answer over the *snapped* interval — that is route
        // semantics (their index structures only know breakpoint pairs),
        // not a cache artifact, so it must not depend on whether a cache
        // is configured.
        let snapped = job.route.cacheable() && gen.meta.breakpoints.is_some();
        if !snapped {
            return self.merged_answer(&gen, q.t1, q.t2, q.k, job.route);
        }
        let bp = gen.meta.breakpoints.as_ref().expect("checked above");
        let key = CacheKey {
            b1: bp.snap_idx(q.t1) as u32,
            b2: bp.snap_idx(q.t2) as u32,
            k: q.k as u32,
            route: job.route,
        };
        let (a, b) = (bp.snap(q.t1), bp.snap(q.t2));
        if self.cache.is_none() || q.tolerance.is_none() {
            return self.merged_answer(&gen, a, b, q.k, job.route);
        }
        // Staleness audit: this generation's re-validated absolute bound
        // ε·M_built, plus whatever mass landed inside the snapped interval
        // since the entry was computed, must still fit the query's
        // ε-budget against the *live* mass.
        let eps_abs = gen.meta.profile(job.route).map_or(0.0, |g| g.eps_abs());
        let budget_abs = q.tolerance.map(|t| t.eps * self.live_mass).unwrap_or(0.0);
        self.cache_lookups += 1;
        let mut invalidate = false;
        if let Some(entry) = self.cache.as_mut().expect("cacheable implies cache").get(&key) {
            let stale = entry.stale.get();
            if stale <= 0.0 || eps_abs + stale <= budget_abs {
                self.cache_hits += 1;
                return Ok(entry.entries.clone());
            }
            invalidate = true;
        }
        if invalidate {
            self.cache_invalidations += 1;
        }
        let res = self.merged_answer(&gen, a, b, q.k, job.route);
        if let Ok(entries) = &res {
            self.cache.as_mut().expect("cacheable implies cache").insert(
                key,
                Cached { entries: entries.clone(), snap_t2: b, stale: Cell::new(0.0) },
            );
        }
        res
    }

    /// Answer an admitted window of routed queries, deduplicating shared
    /// probes: jobs are grouped by the key that fully determines their
    /// answer — the snapped `(B(t1), B(t2))` pair for the breakpoint
    /// routes, the raw interval otherwise, plus `(k, route, tolerance)` —
    /// and each group runs [`ShardState::answer`] exactly once (one frozen
    /// probe, one columnar rescore, one cache lookup), with every member
    /// sharing the result. Deterministic state means the shared answer is
    /// bit-identical to answering each job sequentially.
    fn answer_batch(&mut self, jobs: &[LiveJob]) -> Vec<Result<Vec<(ObjectId, f64)>, String>> {
        #[derive(PartialEq, Eq, Hash)]
        struct BatchKey {
            a: u64,
            b: u64,
            k: usize,
            route: Route,
            tol: Option<(u64, bool)>,
        }
        let gen = self.gen.as_ref().map(|i| Arc::clone(&i.gen));
        let mut groups: HashMap<BatchKey, usize> = HashMap::new();
        let mut computed: Vec<Result<Vec<(ObjectId, f64)>, String>> = Vec::new();
        let mut out = Vec::with_capacity(jobs.len());
        for job in jobs {
            let q = job.query;
            let snapped = match &gen {
                Some(g) if job.route.cacheable() => g.meta.breakpoints.as_ref(),
                _ => None,
            };
            let (a, b) = match snapped {
                Some(bp) => (bp.snap_idx(q.t1) as u64, bp.snap_idx(q.t2) as u64),
                None => (q.t1.to_bits(), q.t2.to_bits()),
            };
            let key = BatchKey {
                a,
                b,
                k: q.k,
                route: job.route,
                tol: q.tolerance.map(|t| (t.eps.to_bits(), t.tight_ranks)),
            };
            let slot = match groups.get(&key) {
                Some(&slot) => slot,
                None => {
                    let slot = computed.len();
                    computed.push(self.answer(job));
                    groups.insert(key, slot);
                    slot
                }
            };
            out.push(computed[slot].clone());
        }
        out
    }

    /// Frozen candidates ∪ touched tail objects, exactly rescored on the
    /// live curves over `[t1, t2]`, global ids, descending score.
    fn merged_answer(
        &mut self,
        gen: &Generation,
        t1: f64,
        t2: f64,
        k: usize,
        route: Route,
    ) -> Result<Vec<(ObjectId, f64)>, String> {
        if t2 < t1 || !t1.is_finite() || !t2.is_finite() {
            return Err(format!("bad query interval [{t1}, {t2}]"));
        }
        if k == 0 {
            return Ok(Vec::new());
        }
        let m = self.live.num_objects();
        // Tail-touched objects: appended segments overlapping the interval.
        let mut touched: Vec<ObjectId> = Vec::new();
        for i in 0..m {
            let fe = self.frozen_end[i];
            let end = self.live.end_time(i);
            if end > fe && fe < t2 && end > t1 {
                touched.push(i as ObjectId);
            }
        }
        // Candidate budget: k + |touched| (+ slack) suffices — any object
        // outside it is beaten by ≥ k candidates (see module docs). The
        // approximate routes are additionally capped by their built kmax.
        let mut kk = (k + touched.len() + self.config.candidate_slack).min(m);
        if !route.is_exact() {
            kk = kk.min(gen.meta.kmax).max(k.min(gen.meta.kmax));
        }
        let frozen = gen.probe(t1, t2, kk, route)?;
        let mut seen = vec![false; m];
        let mut candidates: Vec<ObjectId> = Vec::with_capacity(frozen.len() + touched.len());
        for (id, _) in frozen {
            if !seen[id as usize] {
                seen[id as usize] = true;
                candidates.push(id);
            }
        }
        for id in touched {
            if !seen[id as usize] {
                seen[id as usize] = true;
                candidates.push(id);
            }
        }
        // Exact rescoring streams the shared columns in one batched pass;
        // the columnar kernel is bit-identical to the per-object curve
        // walk, hence bit-identical answers for exact routes.
        let mut scores = Vec::new();
        self.live.integral_batch(&candidates, t1, t2, &mut scores);
        let mut scored: Vec<(ObjectId, f64)> = candidates.into_iter().zip(scores).collect();
        scored.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        scored.truncate(k);
        Ok(scored.into_iter().map(|(id, s)| (self.global_ids[id as usize], s)).collect())
    }

    fn status(&mut self) -> ShardStatus {
        self.status_seq += 1;
        let (generation, built_mass, profiles, size_bytes, gen_io) = match &self.gen {
            Some(i) => {
                let m = &i.gen.meta;
                (m.generation, m.built_mass, m.profiles, m.size_bytes, i.gen.io_total())
            }
            None => (0, 0.0, [None; 5], 0, IoStats::default()),
        };
        ShardStatus {
            seq: self.status_seq,
            generation,
            built_mass,
            tail_segments: self.applied - self.gen_applied,
            rebuild_in_flight: self.pending.is_some(),
            io: self.retired_io + gen_io,
            profiles,
            rebuilds: self.rebuilds,
            build_secs: self.build_secs,
            swap_pause: self.swap_pause,
            queries_during_rebuild: self.queries_during_rebuild,
            cache_hits: self.cache_hits,
            cache_lookups: self.cache_lookups,
            cache_invalidations: self.cache_invalidations,
            size_bytes,
            tail_bytes: self.live.tail_bytes() as u64,
            tail_objects: self.live.tail_objects() as u64,
        }
    }

    fn shutdown(&mut self) {
        if let Some(mut installed) = self.gen.take() {
            if let Some(join) = installed.join.take() {
                join.join().ok();
            }
        }
        if let Some(mut pending) = self.pending.take() {
            // A pending build cannot be interrupted; the builder exits
            // right after its (now unread) announce.
            if let Some(join) = pending.join.take() {
                join.join().ok();
            }
        }
    }
}

/// Thread body of one ingest shard: bootstrap generation 0 (or reopen a
/// preloaded one from a checkpoint image), handshake, then
/// apply/answer/swap until shutdown.
pub(crate) fn shard_main(
    shard: usize,
    subset: TemporalSet,
    global_ids: Vec<ObjectId>,
    config: LiveConfig,
    channels: ShardChannels,
    preload: Option<GenParts>,
    obs: ShardObs,
) {
    let ShardChannels { rx, self_tx, build_tx } = channels;
    let mut state = ShardState::new(shard, subset, global_ids, config, self_tx, obs);
    let mut build_tx = Some(build_tx);
    match preload {
        Some(parts) => {
            // Reopen the persisted generation in-thread: a page-copy plus
            // a deterministic APPX rebuild, not an index construction.
            let spec = GenBuildSpec {
                methods: state.config.methods,
                approx: state.config.approx,
                store: state.config.store,
            };
            let frozen_end = parts.frozen_end.clone();
            let live = &state.live;
            let opened = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let snapshot = TemporalSet::from_columnar(live)?.truncated_at(&frozen_end)?;
                Generation::open(&snapshot, parts, spec)
            }));
            let result = match opened {
                Ok(Ok(gen)) => Ok(gen),
                Ok(Err(e)) => Err(format!("generation reopen: {e}")),
                Err(payload) => {
                    Err(format!("generation reopen panicked: {}", panic_message(&*payload)))
                }
            };
            match result {
                Ok(gen) => {
                    state.frozen_end = frozen_end;
                    state.gen = Some(Installed { gen: Arc::new(gen), join: None });
                    let tx = build_tx.take().expect("handshake not yet sent");
                    let info = ShardInfo {
                        m: state.live.num_objects() as u64,
                        n: (state.live.total_points() - state.live.num_objects()) as u64,
                        status: state.status(),
                    };
                    if tx.send(BuildOutcome { shard, result: Ok(info) }).is_err() {
                        return;
                    }
                }
                Err(message) => {
                    if let Some(tx) = build_tx.take() {
                        tx.send(BuildOutcome { shard, result: Err(message) }).ok();
                    }
                    return;
                }
            }
        }
        None => state.spawn_generation(0),
    }
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Apply(recs) => {
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| state.apply(&recs)));
                if let Err(payload) = out {
                    state.poisoned = Some(format!("apply panicked: {}", panic_message(&*payload)));
                }
            }
            ToShard::Query(job) => {
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| state.answer(&job)));
                let result = outcome.unwrap_or_else(|payload| {
                    Err(format!("query panicked: {}", panic_message(&*payload)))
                });
                let reply = ShardReply { qid: job.qid, shard, result, status: state.status() };
                // A dropped receiver only means that query's caller gave
                // up; later queries carry fresh senders, so keep serving.
                job.reply.send(reply).ok();
            }
            ToShard::QueryBatch(jobs) => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    state.answer_batch(&jobs)
                }));
                let results = outcome.unwrap_or_else(|payload| {
                    let msg = format!("batch query panicked: {}", panic_message(&*payload));
                    jobs.iter().map(|_| Err(msg.clone())).collect()
                });
                for (job, result) in jobs.iter().zip(results) {
                    let reply = ShardReply { qid: job.qid, shard, result, status: state.status() };
                    job.reply.send(reply).ok();
                }
            }
            ToShard::Checkpoint(reply) => {
                let cp = ShardCheckpoint {
                    shard,
                    gen: state.gen.as_ref().map(|i| Arc::clone(&i.gen)),
                    frozen_end: state.frozen_end.clone(),
                };
                reply.send(cp).ok();
            }
            ToShard::GenReady { generation, result } => match result {
                Ok(gen) => {
                    state.install(generation, gen);
                    if generation == 0 {
                        if let Some(tx) = build_tx.take() {
                            let info = ShardInfo {
                                m: state.live.num_objects() as u64,
                                n: (state.live.total_points() - state.live.num_objects()) as u64,
                                status: state.status(),
                            };
                            // Release the handshake sender right away so a
                            // dead sibling is detectable by channel close.
                            let alive = tx.send(BuildOutcome { shard, result: Ok(info) }).is_ok();
                            drop(tx);
                            if !alive {
                                break;
                            }
                        }
                    }
                }
                Err(message) => {
                    if let Some(mut pending) = state.pending.take() {
                        if let Some(join) = pending.join.take() {
                            join.join().ok();
                        }
                    }
                    if generation == 0 {
                        if let Some(tx) = build_tx.take() {
                            tx.send(BuildOutcome { shard, result: Err(message) }).ok();
                        }
                        break;
                    }
                    // A later rebuild failed: keep serving the old
                    // generation; the next apply trigger will retry.
                }
            },
            ToShard::Shutdown => break,
        }
    }
    state.shutdown();
}
