//! Live-engine configuration.

use chronorank_core::ApproxConfig;
use chronorank_serve::MethodSet;
use chronorank_storage::StoreConfig;
use std::path::PathBuf;

/// When a shard folds its mutable tail into a fresh index generation
/// (the paper's §4 amortized rebuild policy, extended with a tail-length
/// bound so rebuild work stays proportional to what accumulated).
#[derive(Debug, Clone, Copy)]
pub struct RebuildPolicy {
    /// Rebuild when the shard's live mass reaches `mass_factor ×` the mass
    /// its current generation was built over (§4 uses 2 — geometric
    /// mass doubling, amortizing construction to the stated per-segment
    /// bounds).
    pub mass_factor: f64,
    /// Rebuild when this many appended segments accumulated in the tail
    /// regardless of mass (keeps tail scans short under low-mass appends).
    pub max_tail_segments: usize,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        Self { mass_factor: 2.0, max_tail_segments: 512 }
    }
}

/// Configuration of an [`crate::IngestEngine`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Ingest/serve shard count `W`; clamped to `[1, m]`.
    pub workers: usize,
    /// Which methods every generation builds (EXACT3 always).
    pub methods: MethodSet,
    /// Parameters of the generation-local approximate indexes.
    pub approx: ApproxConfig,
    /// Storage settings for all index structures and the WAL block size.
    pub store: StoreConfig,
    /// Entries per shard-local result cache; `0` disables caching.
    pub cache_capacity: usize,
    /// The amortized-rebuild trigger.
    pub rebuild: RebuildPolicy,
    /// Where the write-ahead log (and checkpoint snapshots) live. `None`
    /// keeps the WAL on an in-memory block device: durability accounting
    /// still works, crash recovery obviously does not.
    pub wal_dir: Option<PathBuf>,
    /// Extra frozen-index candidates fetched beyond the provable
    /// `k + |tail-touched|` bound, guarding top-k boundary ties against
    /// floating-point perturbation between index arithmetic and exact
    /// rescoring.
    pub candidate_slack: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            methods: MethodSet::default(),
            approx: ApproxConfig::default(),
            store: StoreConfig::default(),
            cache_capacity: 1024,
            rebuild: RebuildPolicy::default(),
            wal_dir: None,
            candidate_slack: 4,
        }
    }
}
