//! Live-engine statistics: ingest throughput, rebuild behaviour, and the
//! reader-side evidence that epoch swaps never block queries.

use chronorank_storage::IoStats;

/// Bucket upper bounds (µs) of [`PauseHistogram`]; the last bucket is
/// open-ended.
pub const PAUSE_BUCKETS_US: [u64; 5] = [50, 200, 1_000, 5_000, 20_000];

/// Histogram of epoch-swap pauses — the only moments a shard does anything
/// besides serving: install the new generation handle, prune the absorbed
/// tail, invalidate the cache. The whole point of off-thread generation
/// builds is that every sample lands in the microsecond buckets while the
/// builds themselves take milliseconds to seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PauseHistogram {
    /// Counts per bucket: `< 50µs, < 200µs, < 1ms, < 5ms, < 20ms, ≥ 20ms`.
    pub buckets: [u64; 6],
    /// Largest observed pause.
    pub max_us: u64,
}

impl PauseHistogram {
    /// Record one pause of `us` microseconds.
    pub fn record(&mut self, us: u64) {
        let slot = PAUSE_BUCKETS_US.iter().position(|&hi| us < hi).unwrap_or(5);
        self.buckets[slot] += 1;
        self.max_us = self.max_us.max(us);
    }

    /// Total recorded pauses.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Merge another histogram in (for cross-shard aggregation).
    pub fn merge(&mut self, other: &PauseHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// A snapshot of everything an [`crate::IngestEngine`] did so far.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Shard count.
    pub workers: usize,
    /// Appended records accepted (WAL-durable).
    pub appends: u64,
    /// Durable group-commits (one WAL sync each).
    pub batches: u64,
    /// Queries answered.
    pub queries: u64,
    /// Coordinator wall seconds across queries and mixed traces.
    pub elapsed_secs: f64,
    /// WAL traffic (`wal_writes` / `wal_bytes` — the ingest path's own
    /// IO attribution, separate from index reads).
    pub wal: IoStats,
    /// Index IO summed over every shard's current generation.
    pub index_io: IoStats,
    /// Completed generation rebuilds across all shards.
    pub rebuilds: u64,
    /// Shards with a rebuild in flight at snapshot time.
    pub rebuilds_in_flight: u64,
    /// Bytes of index structures across all published generations.
    pub index_bytes: u64,
    /// Wall seconds spent *off-thread* building generations (overlaps
    /// serving; not a pause).
    pub build_secs: f64,
    /// Epoch-swap pauses (the reader-visible cost of a rebuild).
    pub swap_pause: PauseHistogram,
    /// Queries answered while some shard had a rebuild in flight — the
    /// non-blocking-readers evidence.
    pub queries_during_rebuild: u64,
    /// Shard-cache hits.
    pub cache_hits: u64,
    /// Shard-cache lookups.
    pub cache_lookups: u64,
    /// Cache entries dropped because appends made them ε-stale.
    pub cache_invalidations: u64,
    /// Appended segments currently waiting in mutable tails.
    pub tail_segments: u64,
    /// Bytes held by the shards' columnar tails (offset table + columns).
    pub tail_bytes: u64,
    /// Objects with a non-empty appended tail.
    pub tail_objects: u64,
    /// Σ mass the serving generations were built over.
    pub built_mass: f64,
    /// Current total mass, appends included.
    pub live_mass: f64,
    /// Highest generation published by any shard.
    pub generations: u64,
    /// Checkpoints taken (WAL truncations).
    pub checkpoints: u64,
    /// Shards whose frozen generation was reopened page-for-page from the
    /// checkpoint image at boot (0 on a fresh build or mismatched config).
    pub preloaded_shards: u64,
}

impl LiveReport {
    /// Overall queries per second (0 when nothing was served).
    pub fn qps(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.queries as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Cache hit rate over cacheable lookups (0 when none happened).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups > 0 {
            self.cache_hits as f64 / self.cache_lookups as f64
        } else {
            0.0
        }
    }

    /// Fraction the live mass has grown past the built generations —
    /// the ε re-validation headroom (`0` right after every shard rebuilt).
    pub fn mass_growth(&self) -> f64 {
        if self.built_mass > 0.0 {
            (self.live_mass - self.built_mass).max(0.0) / self.built_mass
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for LiveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "live report: W = {}, {} appends in {} batches, {} queries ({:.0} q/s)",
            self.workers,
            self.appends,
            self.batches,
            self.queries,
            self.qps()
        )?;
        writeln!(
            f,
            "  wal: {} block flushes, {} payload bytes | index io: {} reads",
            self.wal.wal_writes, self.wal.wal_bytes, self.index_io.reads
        )?;
        writeln!(
            f,
            "  rebuilds: {} ({:.2}s off-thread), swap pauses: {} (max {} µs), \
             {} queries served mid-rebuild",
            self.rebuilds,
            self.build_secs,
            self.swap_pause.count(),
            self.swap_pause.max_us,
            self.queries_during_rebuild
        )?;
        writeln!(
            f,
            "  cache: {}/{} hits ({:.1}%), {} ε-invalidations | tail: {} segments \
             over {} objects ({} bytes), mass growth {:.1}%",
            self.cache_hits,
            self.cache_lookups,
            100.0 * self.cache_hit_rate(),
            self.cache_invalidations,
            self.tail_segments,
            self.tail_objects,
            self.tail_bytes,
            100.0 * self.mass_growth()
        )?;
        writeln!(
            f,
            "  durability: {} checkpoints, {}/{} shards preloaded from image",
            self.checkpoints, self.preloaded_shards, self.workers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_merge() {
        let mut h = PauseHistogram::default();
        for us in [1, 49, 50, 199, 999, 4_999, 19_999, 1_000_000] {
            h.record(us);
        }
        assert_eq!(h.buckets, [2, 2, 1, 1, 1, 1]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.max_us, 1_000_000);
        let mut other = PauseHistogram::default();
        other.record(10);
        other.merge(&h);
        assert_eq!(other.count(), 9);
        assert_eq!(other.buckets[0], 3);
        assert_eq!(other.max_us, 1_000_000);
    }

    #[test]
    fn report_rates_handle_zero_denominators() {
        let r = LiveReport {
            workers: 2,
            appends: 0,
            batches: 0,
            queries: 0,
            elapsed_secs: 0.0,
            wal: IoStats::default(),
            index_io: IoStats::default(),
            rebuilds: 0,
            rebuilds_in_flight: 0,
            index_bytes: 0,
            build_secs: 0.0,
            swap_pause: PauseHistogram::default(),
            queries_during_rebuild: 0,
            cache_hits: 0,
            cache_lookups: 0,
            cache_invalidations: 0,
            tail_segments: 0,
            tail_bytes: 0,
            tail_objects: 0,
            built_mass: 0.0,
            live_mass: 0.0,
            generations: 0,
            checkpoints: 0,
            preloaded_shards: 0,
        };
        assert_eq!(r.qps(), 0.0);
        assert_eq!(r.cache_hit_rate(), 0.0);
        assert_eq!(r.mass_growth(), 0.0);
        assert!(r.to_string().contains("W = 2"));
    }
}
