//! Generations: the frozen, epoch-swapped index side of a shard.
//!
//! A generation is an **immutable snapshot**: EXACT3 (+ optional EXACT1 /
//! APPX1 / APPX2 / APPX2+ sharing one breakpoint set) built over a copy of
//! the live data, plus the metadata the planner and the ε re-validation
//! need. Since the whole index stack is `Send + Sync`, the builder thread
//! simply constructs the generation, hands the finished
//! [`Arc<Generation>`] to its shard through the shard's own mailbox, and
//! **exits** — the shard probes the shared snapshot directly, in-thread.
//! (Before the storage layer became thread-safe this took a resident
//! "generation host" thread serving probes over channels; that machinery
//! is gone.)
//!
//! The shard never blocks on a build: it keeps answering from the old
//! generation while the new one constructs, and the swap itself is an
//! `Arc` replacement (measured in the swap-pause histogram).

use crate::shard::ToShard;
use chronorank_core::{
    AggKind, ApproxConfig, Breakpoints, GenerationProfile, ObjectId, SharedMethod, TemporalSet,
};
use chronorank_serve::{panic_message, MethodSet, Route, RouteProfiles};
use chronorank_storage::{IoStats, StoreConfig};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;

/// What a generation build constructs (one `Copy` bundle so spawn sites
/// stay tidy).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GenBuildSpec {
    pub methods: MethodSet,
    pub approx: ApproxConfig,
    pub store: StoreConfig,
}

/// Everything a shard needs to route against a published generation.
#[derive(Debug, Clone)]
pub(crate) struct GenMeta {
    /// Epoch counter (0 = the bootstrap build).
    pub generation: u64,
    /// Mass the snapshot carried — the denominator of ε re-validation.
    pub built_mass: f64,
    /// Per-route built-method profiles (against `built_mass`).
    pub profiles: RouteProfiles,
    /// The breakpoints the approximate routes snap to.
    pub breakpoints: Option<Breakpoints>,
    /// Largest `k` the approximate routes answer.
    pub kmax: usize,
    /// Bytes across all built structures.
    pub size_bytes: u64,
    /// Off-thread wall time of the build.
    pub build_secs: f64,
}

impl GenMeta {
    /// The generation-aware profile of `route`, if built.
    pub fn profile(&self, route: Route) -> Option<GenerationProfile> {
        self.profiles[route.idx()].map(|profile| GenerationProfile {
            generation: self.generation,
            built_mass: self.built_mass,
            profile,
        })
    }
}

/// A published, immutable generation: built methods + metadata, shared as
/// `Arc<Generation>` between the builder (briefly), the shard, and
/// whatever the shard is answering right now.
pub(crate) struct Generation {
    pub meta: GenMeta,
    methods: [Option<SharedMethod>; 5],
}

impl Generation {
    fn build(
        snapshot: &TemporalSet,
        generation: u64,
        spec: GenBuildSpec,
        build_secs: impl FnOnce() -> f64,
    ) -> chronorank_core::Result<Self> {
        let GenBuildSpec { methods, approx, store } = spec;
        // The one construction path shared with serve shards: what a route
        // is backed by can never diverge between the two layers.
        let (built, breakpoints) =
            chronorank_serve::build_route_methods(snapshot, methods, approx, store)?;
        let profiles: RouteProfiles =
            std::array::from_fn(|i| built[i].as_ref().map(|m| m.profile()));
        let size_bytes = built.iter().flatten().map(|m| m.size_bytes()).sum();
        let meta = GenMeta {
            generation,
            built_mass: snapshot.total_mass(),
            profiles,
            breakpoints,
            kmax: approx.kmax,
            size_bytes,
            build_secs: build_secs(),
        };
        Ok(Self { meta, methods: built })
    }

    /// Frozen top-`k` candidates for `[t1, t2]` on `route` — a direct
    /// in-thread probe of the shared snapshot.
    pub fn probe(
        &self,
        t1: f64,
        t2: f64,
        k: usize,
        route: Route,
    ) -> Result<Vec<(ObjectId, f64)>, String> {
        let method = self.methods[route.idx()]
            .as_ref()
            .ok_or_else(|| format!("route {} not built in this generation", route.name()))?;
        let top = method.top_k(t1, t2, k, AggKind::Sum).map_err(|e| e.to_string())?;
        Ok(top.entries().to_vec())
    }

    /// Cumulative IO of all this generation's indexes.
    pub fn io_total(&self) -> IoStats {
        self.methods.iter().flatten().map(|m| m.io_stats()).sum()
    }
}

/// Thread body of one generation build: construct, hand the finished
/// `Arc` to the shard's mailbox, exit. No serving loop — the shard owns
/// the snapshot from here on.
pub(crate) fn generation_main(
    generation: u64,
    snapshot: TemporalSet,
    spec: GenBuildSpec,
    ready_tx: Sender<ToShard>,
) {
    let t0 = Instant::now();
    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Generation::build(&snapshot, generation, spec, || t0.elapsed().as_secs_f64())
    }));
    let result = match built {
        Ok(Ok(generation)) => Ok(Arc::new(generation)),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!("generation build panicked: {}", panic_message(&*payload))),
    };
    ready_tx.send(ToShard::GenReady { generation, result }).ok();
}
