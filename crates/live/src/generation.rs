//! Generation hosts: the frozen, epoch-swapped index side of a shard.
//!
//! The storage layer's `Rc`-based IO counters make every index `!Send`, so
//! a freshly built generation cannot be handed between threads. Instead the
//! *builder thread keeps what it builds*: a generation host receives a
//! `Send`-able [`TemporalSet`] snapshot, constructs EXACT3 (+ optional
//! EXACT1 / APPX1 / APPX2 / APPX2+ sharing one breakpoint set) locally,
//! announces readiness to its shard, and then serves candidate probes over
//! a channel until its sender is dropped at the next epoch swap.
//!
//! The shard thread therefore never blocks on a build: it keeps answering
//! from the old host while the new one constructs, and the swap itself is
//! a handle replacement (measured in the swap-pause histogram).

use crate::shard::ToShard;
use chronorank_core::{
    AggKind, ApproxConfig, ApproxIndex, ApproxVariant, Breakpoints, Exact1, Exact3,
    GenerationProfile, IndexConfig, ObjectId, TemporalSet, TopKMethod,
};
use chronorank_serve::{panic_message, MethodSet, Route, RouteProfiles};
use chronorank_storage::{Env, IoStats, StoreConfig};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;

/// What a generation host builds (one `Copy` bundle so spawn sites stay
/// tidy).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GenBuildSpec {
    pub methods: MethodSet,
    pub approx: ApproxConfig,
    pub store: StoreConfig,
}

/// Shard → generation-host requests.
pub(crate) enum ToGen {
    /// Fetch the frozen top-`k` candidates for `[t1, t2]` on `route`.
    Probe { t1: f64, t2: f64, k: usize, route: Route },
    /// Stop serving (also implied by the channel closing).
    Shutdown,
}

/// Generation-host → shard probe answer.
pub(crate) struct ProbeReply {
    /// Frozen candidates, `(local id, frozen score)`, descending score.
    pub result: Result<Vec<(ObjectId, f64)>, String>,
    /// Cumulative IO of all this generation's indexes.
    pub io: IoStats,
}

/// Everything a shard needs to route against a published generation.
#[derive(Debug, Clone)]
pub(crate) struct GenMeta {
    /// Epoch counter (0 = the bootstrap build).
    pub generation: u64,
    /// Mass the snapshot carried — the denominator of ε re-validation.
    pub built_mass: f64,
    /// Per-route built-method profiles (against `built_mass`).
    pub profiles: RouteProfiles,
    /// The breakpoints the approximate routes snap to.
    pub breakpoints: Option<Breakpoints>,
    /// Largest `k` the approximate routes answer.
    pub kmax: usize,
    /// Bytes across all built structures.
    pub size_bytes: u64,
    /// Off-thread wall time of the build.
    pub build_secs: f64,
}

impl GenMeta {
    /// The generation-aware profile of `route`, if built.
    pub fn profile(&self, route: Route) -> Option<GenerationProfile> {
        self.profiles[route.idx()].map(|profile| GenerationProfile {
            generation: self.generation,
            built_mass: self.built_mass,
            profile,
        })
    }
}

/// The indexes one host owns (never leaves the host thread).
struct GenIndexes {
    methods: [Option<Box<dyn TopKMethod>>; 5],
}

impl GenIndexes {
    fn build(
        set: &TemporalSet,
        methods: MethodSet,
        approx: ApproxConfig,
        store: StoreConfig,
    ) -> chronorank_core::Result<(Self, RouteProfiles, Option<Breakpoints>, u64)> {
        let mut built: [Option<Box<dyn TopKMethod>>; 5] = std::array::from_fn(|_| None);
        if methods.exact1 {
            built[Route::Exact1.idx()] = Some(Box::new(Exact1::build(set, IndexConfig { store })?));
        }
        built[Route::Exact3.idx()] = Some(Box::new(Exact3::build(set, IndexConfig { store })?));
        let approx = ApproxConfig { store, ..approx };
        let breakpoints = if methods.any_approx() {
            Some(match approx.eps {
                Some(eps) => Breakpoints::b2_with_eps(set, eps, approx.b2)?,
                None => Breakpoints::b2_with_count(set, approx.r, approx.b2)?,
            })
        } else {
            None
        };
        for (flag, route, variant) in [
            (methods.appx1, Route::Appx1, ApproxVariant::APPX1),
            (methods.appx2, Route::Appx2, ApproxVariant::APPX2),
            (methods.appx2_plus, Route::Appx2Plus, ApproxVariant::APPX2_PLUS),
        ] {
            if flag {
                let bp = breakpoints.clone().expect("breakpoints exist when any approx is built");
                let idx =
                    ApproxIndex::build_with_breakpoints(Env::mem(store), set, variant, approx, bp)?;
                built[route.idx()] = Some(Box::new(idx));
            }
        }
        let profiles: RouteProfiles =
            std::array::from_fn(|i| built[i].as_ref().map(|m| m.profile()));
        let size_bytes = built.iter().flatten().map(|m| m.size_bytes()).sum();
        Ok((Self { methods: built }, profiles, breakpoints, size_bytes))
    }

    fn probe(
        &self,
        t1: f64,
        t2: f64,
        k: usize,
        route: Route,
    ) -> Result<Vec<(ObjectId, f64)>, String> {
        let method = self.methods[route.idx()]
            .as_ref()
            .ok_or_else(|| format!("route {} not built in this generation", route.name()))?;
        let top = method.top_k(t1, t2, k, AggKind::Sum).map_err(|e| e.to_string())?;
        Ok(top.entries().to_vec())
    }

    fn io_total(&self) -> IoStats {
        self.methods.iter().flatten().map(|m| m.io_stats()).sum()
    }
}

/// Thread body of one generation host: build, announce, serve probes.
pub(crate) fn generation_main(
    generation: u64,
    snapshot: TemporalSet,
    spec: GenBuildSpec,
    rx: Receiver<ToGen>,
    reply_tx: Sender<ProbeReply>,
    ready_tx: Sender<ToShard>,
) {
    let t0 = Instant::now();
    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        GenIndexes::build(&snapshot, spec.methods, spec.approx, spec.store)
    }));
    let (indexes, meta) = match built {
        Ok(Ok((indexes, profiles, breakpoints, size_bytes))) => {
            let meta = GenMeta {
                generation,
                built_mass: snapshot.total_mass(),
                profiles,
                breakpoints,
                kmax: spec.approx.kmax,
                size_bytes,
                build_secs: t0.elapsed().as_secs_f64(),
            };
            (indexes, meta)
        }
        Ok(Err(e)) => {
            ready_tx.send(ToShard::GenReady { generation, result: Err(e.to_string()) }).ok();
            return;
        }
        Err(payload) => {
            let message = format!("generation build panicked: {}", panic_message(&*payload));
            ready_tx.send(ToShard::GenReady { generation, result: Err(message) }).ok();
            return;
        }
    };
    drop(snapshot);
    if ready_tx.send(ToShard::GenReady { generation, result: Ok(Box::new(meta)) }).is_err() {
        return; // shard gone before the build finished
    }
    while let Ok(msg) = rx.recv() {
        match msg {
            ToGen::Probe { t1, t2, k, route } => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    indexes.probe(t1, t2, k, route)
                }));
                let result = outcome.unwrap_or_else(|payload| {
                    Err(format!("probe panicked: {}", panic_message(&*payload)))
                });
                let reply = ProbeReply { result, io: indexes.io_total() };
                if reply_tx.send(reply).is_err() {
                    return;
                }
            }
            ToGen::Shutdown => return,
        }
    }
}
