//! Generations: the frozen, epoch-swapped index side of a shard.
//!
//! A generation is an **immutable snapshot**: EXACT3 (+ optional EXACT1 /
//! APPX1 / APPX2 / APPX2+ sharing one breakpoint set) built over a copy of
//! the live data, plus the metadata the planner and the ε re-validation
//! need. Since the whole index stack is `Send + Sync`, the builder thread
//! simply constructs the generation, hands the finished
//! [`Arc<Generation>`] to its shard through the shard's own mailbox, and
//! **exits** — the shard probes the shared snapshot directly, in-thread.
//! (Before the storage layer became thread-safe this took a resident
//! "generation host" thread serving probes over channels; that machinery
//! is gone.)
//!
//! The shard never blocks on a build: it keeps answering from the old
//! generation while the new one constructs, and the swap itself is an
//! `Arc` replacement (measured in the swap-pause histogram).

use crate::shard::ToShard;
use chronorank_core::{
    AggKind, ApproxConfig, Breakpoints, Exact1, Exact3, GenerationProfile, ObjectId, SharedMethod,
    TemporalSet,
};
use chronorank_serve::{panic_message, MethodSet, Route, RouteProfiles};
use chronorank_storage::{Env, ImageWriter, IoStats, PagedFile, StoreConfig};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Instant;

/// What a generation build constructs (one `Copy` bundle so spawn sites
/// stay tidy).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GenBuildSpec {
    pub methods: MethodSet,
    pub approx: ApproxConfig,
    pub store: StoreConfig,
}

/// Everything a shard needs to route against a published generation.
#[derive(Debug, Clone)]
pub(crate) struct GenMeta {
    /// Epoch counter (0 = the bootstrap build).
    pub generation: u64,
    /// Mass the snapshot carried — the denominator of ε re-validation.
    pub built_mass: f64,
    /// Per-route built-method profiles (against `built_mass`).
    pub profiles: RouteProfiles,
    /// The breakpoints the approximate routes snap to.
    pub breakpoints: Option<Breakpoints>,
    /// Largest `k` the approximate routes answer.
    pub kmax: usize,
    /// Bytes across all built structures.
    pub size_bytes: u64,
    /// Off-thread wall time of the build.
    pub build_secs: f64,
}

impl GenMeta {
    /// The generation-aware profile of `route`, if built.
    pub fn profile(&self, route: Route) -> Option<GenerationProfile> {
        self.profiles[route.idx()].map(|profile| GenerationProfile {
            generation: self.generation,
            built_mass: self.built_mass,
            profile,
        })
    }
}

/// One reopened index extracted from a generation image: its environment
/// (IO counter owner), the page-captured tree file, and the serialized
/// side metadata.
pub(crate) struct GenPart {
    pub env: Env,
    pub file: PagedFile,
    pub meta: Vec<u8>,
}

/// Everything a shard needs to reopen its frozen generation from a
/// checkpoint image: EXACT3 (always), optional EXACT1, the breakpoint
/// table (APPX variants rebuild deterministically from it), and the
/// per-object frozen edges that reconstruct the build-time snapshot.
pub(crate) struct GenParts {
    pub generation: u64,
    pub frozen_end: Vec<f64>,
    pub exact1: Option<GenPart>,
    pub exact3: GenPart,
    pub breakpoints: Option<Vec<u8>>,
}

/// A published, immutable generation: built methods + metadata, shared as
/// `Arc<Generation>` between the builder (briefly), the shard, and
/// whatever the shard is answering right now. Also keeps the concrete
/// EXACT1/EXACT3 handles (the `methods` array holds `Arc` clones of the
/// same indexes) so a checkpoint can capture the trees page-for-page.
pub(crate) struct Generation {
    pub meta: GenMeta,
    methods: [Option<SharedMethod>; 5],
    exact1: Option<Arc<Exact1>>,
    exact3: Arc<Exact3>,
}

impl Generation {
    fn build(
        snapshot: &TemporalSet,
        generation: u64,
        spec: GenBuildSpec,
        build_secs: impl FnOnce() -> f64,
    ) -> chronorank_core::Result<Self> {
        let GenBuildSpec { methods, approx, store } = spec;
        // The one construction path shared with serve shards: what a route
        // is backed by can never diverge between the two layers.
        let built =
            chronorank_serve::build_route_methods_with_handles(snapshot, methods, approx, store)?;
        Ok(Self::assembled(snapshot, generation, approx.kmax, built, build_secs()))
    }

    /// Reopen from the parts of a checkpoint image: the exact trees come
    /// back page-for-page (no sort, no build), and the APPX variants are
    /// rebuilt deterministically from the persisted breakpoints over the
    /// reconstructed build-time snapshot.
    pub(crate) fn open(
        snapshot: &TemporalSet,
        parts: GenParts,
        spec: GenBuildSpec,
    ) -> chronorank_core::Result<Self> {
        let GenBuildSpec { methods, approx, store } = spec;
        let exact1 = match parts.exact1 {
            Some(p) => Some(Arc::new(Exact1::open_parts(p.env, p.file, &p.meta)?)),
            None => None,
        };
        let p3 = parts.exact3;
        let exact3 = Arc::new(Exact3::open_parts(p3.env, store, p3.file, &p3.meta)?);
        let breakpoints = match &parts.breakpoints {
            Some(bytes) => Some(Breakpoints::from_bytes(bytes)?),
            None => None,
        };
        if methods.exact1 != exact1.is_some() || methods.any_approx() != breakpoints.is_some() {
            return Err(chronorank_core::CoreError::BadQuery(
                "generation image does not match the configured method set".into(),
            ));
        }
        let built = chronorank_serve::assemble_route_methods(
            snapshot,
            methods,
            approx,
            store,
            exact1,
            exact3,
            breakpoints,
        )?;
        Ok(Self::assembled(snapshot, parts.generation, approx.kmax, built, 0.0))
    }

    fn assembled(
        snapshot: &TemporalSet,
        generation: u64,
        kmax: usize,
        built: chronorank_serve::BuiltRoutes,
        build_secs: f64,
    ) -> Self {
        let chronorank_serve::BuiltRoutes { methods, breakpoints, exact1, exact3 } = built;
        let profiles: RouteProfiles =
            std::array::from_fn(|i| methods[i].as_ref().map(|m| m.profile()));
        let size_bytes = methods.iter().flatten().map(|m| m.size_bytes()).sum();
        let meta = GenMeta {
            generation,
            built_mass: snapshot.total_mass(),
            profiles,
            breakpoints,
            kmax,
            size_bytes,
            build_secs,
        };
        Self { meta, methods, exact1, exact3 }
    }

    /// Write this generation's persistent form under `prefix` in an image:
    /// the exact trees page-for-page, their side metadata, the breakpoint
    /// table, and the frozen edges that let a reopen reconstruct the
    /// build-time snapshot from the recovered live set.
    pub(crate) fn add_to_image(
        &self,
        w: &mut ImageWriter,
        prefix: &str,
        frozen_end: &[f64],
    ) -> chronorank_core::Result<()> {
        let mut meta = Vec::with_capacity(14 + 8 * frozen_end.len());
        meta.extend_from_slice(&self.meta.generation.to_le_bytes());
        meta.push(self.exact1.is_some() as u8);
        meta.push(self.meta.breakpoints.is_some() as u8);
        meta.extend_from_slice(&(frozen_end.len() as u32).to_le_bytes());
        for &e in frozen_end {
            meta.extend_from_slice(&e.to_bits().to_le_bytes());
        }
        w.add_blob(&format!("{prefix}meta"), &meta)?;
        if let Some(e1) = &self.exact1 {
            w.add_paged(&format!("{prefix}exact1_pages"), e1.tree_file())?;
            w.add_blob(&format!("{prefix}exact1_meta"), &e1.meta_bytes())?;
        }
        w.add_paged(&format!("{prefix}exact3_pages"), self.exact3.tree_file())?;
        w.add_blob(&format!("{prefix}exact3_meta"), &self.exact3.meta_bytes())?;
        if let Some(bp) = &self.meta.breakpoints {
            w.add_blob(&format!("{prefix}breakpoints"), &bp.to_bytes())?;
        }
        Ok(())
    }

    /// Frozen top-`k` candidates for `[t1, t2]` on `route` — a direct
    /// in-thread probe of the shared snapshot.
    pub fn probe(
        &self,
        t1: f64,
        t2: f64,
        k: usize,
        route: Route,
    ) -> Result<Vec<(ObjectId, f64)>, String> {
        let method = self.methods[route.idx()]
            .as_ref()
            .ok_or_else(|| format!("route {} not built in this generation", route.name()))?;
        let top = method.top_k(t1, t2, k, AggKind::Sum).map_err(|e| e.to_string())?;
        Ok(top.entries().to_vec())
    }

    /// Cumulative IO of all this generation's indexes.
    pub fn io_total(&self) -> IoStats {
        self.methods.iter().flatten().map(|m| m.io_stats()).sum()
    }
}

/// Thread body of one generation build: construct, hand the finished
/// `Arc` to the shard's mailbox, exit. No serving loop — the shard owns
/// the snapshot from here on.
pub(crate) fn generation_main(
    generation: u64,
    snapshot: TemporalSet,
    spec: GenBuildSpec,
    ready_tx: Sender<ToShard>,
) {
    let t0 = Instant::now();
    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Generation::build(&snapshot, generation, spec, || t0.elapsed().as_secs_f64())
    }));
    let result = match built {
        Ok(Ok(generation)) => Ok(Arc::new(generation)),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!("generation build panicked: {}", panic_message(&*payload))),
    };
    ready_tx.send(ToShard::GenReady { generation, result }).ok();
}
