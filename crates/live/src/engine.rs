//! The ingest engine: durable appends in, fresh answers out.
//!
//! Appends take `&mut self` (there is exactly one WAL and one master set),
//! but the whole query path takes `&self`: every query opens its own reply
//! channel, so any number of caller threads can query one engine
//! concurrently — the network tier wraps an `IngestEngine` in an `RwLock`
//! and lets reads overlap while appends serialize.

use crate::config::LiveConfig;
use crate::generation::{GenPart, GenParts};
use crate::obs::LiveObs;
use crate::report::{LiveReport, PauseHistogram};
use crate::shard::{
    shard_main, LiveJob, ShardChannels, ShardCheckpoint, ShardReply, ShardStatus, ToShard,
};
use chronorank_core::{AppendRecord, ObjectId, TemporalSet, TopK};
use chronorank_curve::ColumnarTail;
use chronorank_obs::{elapsed_us, AttrValue, Registry, SpanId, SpanSink, TraceId};
use chronorank_serve::{
    merge_profiles, merge_ranked, partition, Freshness, MethodSet, Planner, PlannerParams, Route,
    ServeQuery,
};
use chronorank_storage::{
    Env, FileDevice, GenerationImage, ImageWriter, IoCounter, StorageError, WriteAheadLog,
};
use chronorank_workloads::LiveOp;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Instant;

/// Errors surfaced by the live layer.
#[derive(Debug)]
pub enum LiveError {
    /// A thread could not be spawned.
    Spawn(String),
    /// A shard failed its bootstrap build.
    Build {
        /// Which shard failed.
        shard: usize,
        /// The underlying build error.
        message: String,
    },
    /// A query failed on some shard.
    Query(String),
    /// A shard thread died (channel closed).
    WorkerGone,
    /// WAL / snapshot storage failure.
    Storage(StorageError),
    /// An append was rejected (unknown object, non-monotone time, …).
    Append(String),
    /// Snapshot IO failure during checkpoint or recovery.
    Snapshot(String),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Spawn(e) => write!(f, "failed to spawn worker: {e}"),
            LiveError::Build { shard, message } => {
                write!(f, "shard {shard} failed to build: {message}")
            }
            LiveError::Query(e) => write!(f, "query failed: {e}"),
            LiveError::WorkerGone => write!(f, "a shard thread terminated unexpectedly"),
            LiveError::Storage(e) => write!(f, "wal: {e}"),
            LiveError::Append(e) => write!(f, "append rejected: {e}"),
            LiveError::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for LiveError {}

impl From<StorageError> for LiveError {
    fn from(e: StorageError) -> Self {
        LiveError::Storage(e)
    }
}

/// Result of [`IngestEngine::run_ops`]: a mixed append/query trace executed
/// pipelined (appends are fire-and-forget past the WAL sync, queries are
/// gathered at the end), so wall time measures live serving throughput.
#[derive(Debug)]
pub struct LiveOutcome {
    /// One merged answer per [`LiveOp::Query`], trace order.
    pub answers: Vec<TopK>,
    /// Records appended by the trace.
    pub appends: u64,
    /// Wall time for the whole trace.
    pub elapsed_secs: f64,
}

impl LiveOutcome {
    /// Queries per second over the mixed trace.
    pub fn qps(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.answers.len() as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Appended records per second over the mixed trace.
    pub fn ingest_rate(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.appends as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

struct Worker {
    tx: Sender<ToShard>,
    handle: Option<JoinHandle<()>>,
}

/// Bookkeeping for one pipelined trace: replies can be absorbed at any
/// moment (opportunistically during the trace, exhaustively at the end),
/// and `expected()` says when every scattered query is fully answered.
struct TraceGather {
    base_qid: u64,
    w: usize,
    /// `k` of each scattered query, scatter order.
    ks: Vec<usize>,
    /// Per-query shard answers collected so far.
    partial: Vec<Vec<Vec<(ObjectId, f64)>>>,
    /// Merged answers (filled once all `w` shards replied).
    answers: Vec<Option<TopK>>,
    received: usize,
    first_err: Option<String>,
}

impl TraceGather {
    fn new(base_qid: u64, w: usize) -> Self {
        Self {
            base_qid,
            w,
            ks: Vec::new(),
            partial: Vec::new(),
            answers: Vec::new(),
            received: 0,
            first_err: None,
        }
    }

    /// Register one scattered query.
    fn scattered(&mut self, k: usize) {
        self.ks.push(k);
        self.partial.push(Vec::new());
        self.answers.push(None);
    }

    /// Replies owed by the shards for everything scattered so far.
    fn expected(&self) -> usize {
        self.ks.len() * self.w
    }

    /// Fold one shard reply in (merging the query once complete).
    fn absorb(&mut self, reply: ShardReply) {
        let i = (reply.qid - self.base_qid) as usize;
        self.received += 1;
        match reply.result {
            Ok(entries) => {
                self.partial[i].push(entries);
                if self.partial[i].len() == self.w {
                    self.answers[i] = Some(merge_ranked(&self.partial[i], self.ks[i]));
                    self.partial[i] = Vec::new();
                }
            }
            Err(e) => {
                if self.first_err.is_none() {
                    self.first_err = Some(e);
                }
            }
        }
    }
}

/// Query-path counters updated under one short lock (the query path is
/// `&self`, so plain fields will not do).
struct QueryCounters {
    queries: u64,
    elapsed_secs: f64,
}

/// The WAL-backed live ingest/serving engine (see crate docs).
///
/// Owns the write-ahead log, a master copy of the live [`TemporalSet`]
/// (the checkpoint/recovery source of truth), and `W` ingest shards that
/// each pair a mutable tail with an epoch-swapped frozen generation.
pub struct IngestEngine {
    master: TemporalSet,
    wal: WriteAheadLog,
    image_path: Option<PathBuf>,
    workers: Vec<Worker>,
    statuses: Mutex<Vec<ShardStatus>>,
    params: PlannerParams,
    next_qid: AtomicU64,
    // --- accumulated statistics ---
    appends: u64,
    batches: u64,
    query_counters: Mutex<QueryCounters>,
    checkpoints: u64,
    /// Shards that reopened their frozen generation from the checkpoint
    /// image at boot instead of rebuilding it (cold-start observability).
    preloaded_shards: u64,
    /// Config facts stamped into checkpoint images (the preload gate).
    config_kmax: usize,
    config_flags: u8,
    /// Pre-resolved metric handles (process-global registry).
    obs: LiveObs,
}

/// Bit-packed [`MethodSet`] for the image's engine metadata.
fn method_flags(m: MethodSet) -> u8 {
    (m.exact1 as u8) | ((m.appx1 as u8) << 1) | ((m.appx2 as u8) << 2) | ((m.appx2_plus as u8) << 3)
}

impl IngestEngine {
    /// Boot the engine over `seed`, **recovering first** when the
    /// configured WAL directory already holds state: the base set is the
    /// latest checkpoint snapshot (or `seed` if none), every durable WAL
    /// record is replayed onto it, and the shards bootstrap from the
    /// recovered set — so answers after a crash equal answers before it.
    pub fn new(seed: &TemporalSet, config: LiveConfig) -> Result<Self, LiveError> {
        let obs = LiveObs::attach(Registry::global());
        let t_recover = Instant::now();
        let (wal, base, image_path, mut preloads) = Self::recover(seed, &config)?;
        obs.recovery_us.set_u64(elapsed_us(t_recover));
        let w = config.workers.clamp(1, base.num_objects());
        if preloads.len() != w {
            preloads = (0..w).map(|_| None).collect();
        }
        let preloaded_shards = preloads.iter().filter(|p| p.is_some()).count() as u64;
        let (build_tx, build_rx) = channel();
        let mut workers = Vec::with_capacity(w);
        for (shard, (subset, global_ids)) in partition(&base, w).into_iter().enumerate() {
            let (tx, rx) = channel();
            let channels = ShardChannels { rx, self_tx: tx.clone(), build_tx: build_tx.clone() };
            let cfg = config.clone();
            let preload = preloads[shard].take();
            let shard_obs = obs.shard.clone();
            let handle = std::thread::Builder::new()
                .name(format!("chronorank-live-{shard}"))
                .spawn(move || {
                    shard_main(shard, subset, global_ids, cfg, channels, preload, shard_obs)
                })
                .map_err(|e| LiveError::Spawn(e.to_string()))?;
            workers.push(Worker { tx, handle: Some(handle) });
        }
        drop(build_tx);

        let (mut max_m, mut max_n) = (0u64, 0u64);
        let mut statuses = vec![None; w];
        for _ in 0..w {
            let outcome = build_rx.recv().map_err(|_| LiveError::WorkerGone)?;
            match outcome.result {
                Ok(info) => {
                    max_m = max_m.max(info.m);
                    max_n = max_n.max(info.n);
                    statuses[outcome.shard] = Some(info.status);
                }
                Err(message) => {
                    return Err(LiveError::Build { shard: outcome.shard, message });
                }
            }
        }
        let statuses: Vec<ShardStatus> =
            statuses.into_iter().map(|s| s.expect("every shard handshakes")).collect();
        let params = PlannerParams {
            shard_m: max_m,
            shard_n: max_n,
            block: config.store.block_size as u64,
            r: config.approx.r as u64,
            span: base.span(),
        };
        Ok(Self {
            master: base,
            wal,
            image_path,
            workers,
            statuses: Mutex::new(statuses),
            params,
            next_qid: AtomicU64::new(0),
            appends: 0,
            batches: 0,
            query_counters: Mutex::new(QueryCounters { queries: 0, elapsed_secs: 0.0 }),
            checkpoints: 0,
            preloaded_shards,
            config_kmax: config.approx.kmax,
            config_flags: method_flags(config.methods),
            obs,
        })
    }

    /// Recovery half of [`IngestEngine::new`] — resolves the WAL, the base
    /// set, and (when a checkpoint image exists and matches the config)
    /// the per-shard frozen generations to reopen instead of rebuilding.
    ///
    /// The WAL epoch decides what replays: a checkpoint stamps its image
    /// with `S = epoch + 1` *before* truncating the log (which bumps the
    /// epoch to exactly `S`). So `wal.epoch() >= S` means the log holds
    /// only post-checkpoint records — replay all of them; `< S` means the
    /// checkpoint crashed between image publish and truncation, and every
    /// logged record is already inside the image — skip the log entirely.
    #[allow(clippy::type_complexity)]
    fn recover(
        seed: &TemporalSet,
        config: &LiveConfig,
    ) -> Result<(WriteAheadLog, TemporalSet, Option<PathBuf>, Vec<Option<GenParts>>), LiveError>
    {
        let Some(dir) = &config.wal_dir else {
            return Ok((
                WriteAheadLog::mem(config.store.block_size),
                seed.clone(),
                None,
                Vec::new(),
            ));
        };
        std::fs::create_dir_all(dir).map_err(|e| LiveError::Snapshot(e.to_string()))?;
        let wal_path = dir.join("wal.blk");
        let device = if wal_path.exists() {
            FileDevice::open(&wal_path, config.store.block_size)?
        } else {
            FileDevice::create(&wal_path, config.store.block_size)?
        };
        let mut wal = WriteAheadLog::open_or_create(Box::new(device), IoCounter::new())?;
        let image_path = dir.join("generation.img");
        let (mut base, image_epoch, preloads) = if image_path.exists() {
            let (set, epoch, preloads) = Self::load_image(&image_path, config)?;
            (set, Some(epoch), preloads)
        } else {
            (seed.clone(), None, Vec::new())
        };
        if image_epoch.is_none_or(|s| wal.epoch() >= s) {
            // Replay stays idempotent as a second line of defense: a record
            // whose time does not extend its object is already part of the
            // image.
            let mut bad: Option<String> = None;
            wal.replay(|lsn, payload| {
                if bad.is_some() {
                    return;
                }
                match AppendRecord::decode(payload) {
                    Some(rec) => match base.object(rec.object) {
                        Ok(o) if rec.t > o.curve.end() => {
                            if let Err(e) = base.apply(rec) {
                                bad = Some(format!("replay lsn {lsn}: {e}"));
                            }
                        }
                        Ok(_) => {} // already absorbed by the checkpoint
                        Err(e) => bad = Some(format!("replay lsn {lsn}: {e}")),
                    },
                    None => bad = Some(format!("replay lsn {lsn}: undecodable record")),
                }
            })?;
            if let Some(e) = bad {
                return Err(LiveError::Snapshot(e));
            }
        }
        Ok((wal, base, Some(image_path), preloads))
    }

    /// Load a checkpoint image: the master set (always used — it IS the
    /// checkpoint) and, when the persisted topology matches the current
    /// config, the per-shard generation parts to reopen. A topology
    /// mismatch (worker count, block size, kmax, method set) only forfeits
    /// the index preload — the data still recovers from the image.
    fn load_image(
        path: &Path,
        config: &LiveConfig,
    ) -> Result<(TemporalSet, u64, Vec<Option<GenParts>>), LiveError> {
        let mut img = GenerationImage::open(path)?;
        let columns = ColumnarTail::from_bytes(&img.blob("live_set")?)
            .ok_or_else(|| LiveError::Snapshot("live_set: malformed columnar image".into()))?;
        let set = TemporalSet::from_columnar(&columns)
            .map_err(|e| LiveError::Snapshot(format!("live_set: {e}")))?;
        let epoch = img.epoch();
        let meta = img.blob("engine")?;
        if meta.len() != 25 {
            return Err(LiveError::Snapshot("corrupt engine metadata".into()));
        }
        let u64_at = |at: usize| u64::from_le_bytes(meta[at..at + 8].try_into().expect("8"));
        let w = u64_at(0) as usize;
        let compatible = w == config.workers.clamp(1, set.num_objects())
            && u64_at(8) as usize == config.store.block_size
            && u64_at(16) as usize == config.approx.kmax
            && meta[24] == method_flags(config.methods);
        if !compatible {
            return Ok((set, epoch, Vec::new()));
        }
        let mut preloads = Vec::with_capacity(w);
        for shard in 0..w {
            // A missing shard section (e.g. a shard that had no installed
            // generation at checkpoint time) falls back to a fresh build
            // for that shard only.
            preloads.push(Self::load_shard_parts(&mut img, shard, config).ok());
        }
        Ok((set, epoch, preloads))
    }

    /// Extract one shard's generation parts from an open image.
    fn load_shard_parts(
        img: &mut GenerationImage,
        shard: usize,
        config: &LiveConfig,
    ) -> Result<GenParts, LiveError> {
        let meta = img.blob(&format!("s{shard}/meta"))?;
        if meta.len() < 14 {
            return Err(LiveError::Snapshot("corrupt shard metadata".into()));
        }
        let generation = u64::from_le_bytes(meta[..8].try_into().expect("8"));
        let (has_exact1, has_bp) = (meta[8] != 0, meta[9] != 0);
        let count = u32::from_le_bytes(meta[10..14].try_into().expect("4")) as usize;
        if meta.len() != 14 + 8 * count {
            return Err(LiveError::Snapshot("corrupt shard metadata".into()));
        }
        let frozen_end: Vec<f64> = (0..count)
            .map(|i| {
                let at = 14 + 8 * i;
                f64::from_bits(u64::from_le_bytes(meta[at..at + 8].try_into().expect("8")))
            })
            .collect();
        let mut part = |name: &str| -> Result<GenPart, LiveError> {
            let env = Env::mem(config.store);
            let file =
                img.paged(&format!("s{shard}/{name}_pages"), config.store.pool_capacity, env.io())?;
            let meta = img.blob(&format!("s{shard}/{name}_meta"))?;
            Ok(GenPart { env, file, meta })
        };
        let exact1 = if has_exact1 { Some(part("exact1")?) } else { None };
        let exact3 = part("exact3")?;
        let breakpoints =
            if has_bp { Some(img.blob(&format!("s{shard}/breakpoints"))?) } else { None };
        Ok(GenParts { generation, frozen_end, exact1, exact3, breakpoints })
    }

    /// Number of ingest shards.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The engine's master copy of the live data (appends applied; the
    /// source of truth for checkpoints and ground-truth assertions).
    pub fn live_set(&self) -> &TemporalSet {
        &self.master
    }

    /// The freshness-aware routing decision for `q` (without executing).
    pub fn route_for(&self, q: &ServeQuery) -> Route {
        self.planner().route_with_freshness(q, Some(self.freshness()))
    }

    /// The router over the shards' *current* generation profiles (rebuilt
    /// on demand — epoch swaps change the profiles underneath). Combined
    /// with [`IngestEngine::freshness`] this is how a serving tier above
    /// (the network layer) restates each route's achieved ε against the
    /// live mass when reporting what a query was answered with.
    pub fn planner(&self) -> Planner {
        let statuses = self.statuses.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let profiles: Vec<_> = statuses.iter().map(|s| s.profiles).collect();
        Planner::new(self.params, merge_profiles(&profiles))
    }

    /// The §4 freshness dimension: mass the serving generations were
    /// built over vs the live (appends-included) mass.
    pub fn freshness(&self) -> Freshness {
        let statuses = self.statuses.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let built_mass: f64 = statuses.iter().map(|s| s.built_mass).sum();
        Freshness { built_mass, live_mass: self.master.total_mass() }
    }

    /// Records durably applied over the engine's lifetime (cheaper than
    /// assembling a full [`LiveReport`] when only this counter is needed).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Append one record durably (one WAL sync). Prefer
    /// [`IngestEngine::append_batch`] for throughput.
    pub fn append(&mut self, rec: AppendRecord) -> Result<(), LiveError> {
        self.append_batch(std::slice::from_ref(&rec))
    }

    /// Append a batch durably: every record is validated against the
    /// master set, written to the WAL, group-committed with **one** sync,
    /// and only then shipped to the owning shards. A rejected record (or a
    /// WAL failure) fails the batch at that point — but every record
    /// accepted before it is still shipped, so the master set, the WAL,
    /// and the shards never diverge from each other.
    pub fn append_batch(&mut self, recs: &[AppendRecord]) -> Result<(), LiveError> {
        if recs.is_empty() {
            return Ok(());
        }
        let w = self.workers.len();
        let mut per_shard: Vec<Vec<AppendRecord>> = vec![Vec::new(); w];
        let mut accepted = 0u64;
        let mut failed = None;
        for rec in recs {
            // Validate BEFORE touching the WAL or the master set (the
            // checks mirror `PiecewiseLinear::append` exactly), so a
            // rejected record leaves no trace anywhere.
            let end = match self.master.object(rec.object) {
                Ok(o) => o.curve.end(),
                Err(e) => {
                    failed = Some(LiveError::Append(e.to_string()));
                    break;
                }
            };
            if !rec.t.is_finite() || !rec.v.is_finite() || rec.t <= end {
                failed = Some(LiveError::Append(format!(
                    "record must extend object {} past t = {end} with finite values, \
                     got (t = {}, v = {})",
                    rec.object, rec.t, rec.v
                )));
                break;
            }
            // Durability first; an IO failure stops the batch but the
            // records already logged still reach master and shards below.
            let t_append = Instant::now();
            if let Err(e) = self.wal.append(&rec.encode()) {
                failed = Some(LiveError::Storage(e));
                break;
            }
            self.obs.wal_append_us.record(elapsed_us(t_append));
            self.master.apply(*rec).expect("validated above");
            accepted += 1;
            let shard = rec.object as usize % w;
            per_shard[shard].push(AppendRecord {
                object: rec.object / w as u32,
                t: rec.t,
                v: rec.v,
            });
        }
        if accepted > 0 {
            // Even if the sync fails, ship what was applied to master —
            // consistency between master and shards outranks durability of
            // the tail (the caller learns about the failed sync).
            let t_sync = Instant::now();
            let synced = self.wal.sync();
            self.obs.wal_fsync_us.record(elapsed_us(t_sync));
            self.obs.batch_size.record(accepted);
            for (shard, batch) in per_shard.into_iter().enumerate() {
                if !batch.is_empty() {
                    self.workers[shard]
                        .tx
                        .send(ToShard::Apply(batch))
                        .map_err(|_| LiveError::WorkerGone)?;
                }
            }
            self.appends += accepted;
            self.batches += 1;
            if let Err(e) = synced {
                failed.get_or_insert(LiveError::Storage(e));
            }
        }
        match failed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Answer one query: route with freshness, scatter, gather, merge.
    pub fn query(&self, q: ServeQuery) -> Result<TopK, LiveError> {
        self.query_routed(q).map(|(top, _)| top)
    }

    /// [`IngestEngine::query`], also returning the freshness-aware route
    /// this execution was planned onto (taken atomically with the answer,
    /// so an epoch swap between planning and reporting cannot misattribute
    /// it). `&self`: each call gathers on its own private channel, so
    /// concurrent callers can never cross answers.
    pub fn query_routed(&self, q: ServeQuery) -> Result<(TopK, Route), LiveError> {
        let t0 = Instant::now();
        let route = self.route_for(&q);
        let qid = self.next_qid.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = channel();
        self.scatter(LiveJob { qid, query: q, route, reply: reply_tx })?;
        let w = self.workers.len();
        let mut lists = Vec::with_capacity(w);
        let mut first_err = None;
        for _ in 0..w {
            let reply = reply_rx.recv().map_err(|_| LiveError::WorkerGone)?;
            debug_assert_eq!(reply.qid, qid);
            self.absorb_status(&reply);
            match reply.result {
                Ok(entries) => lists.push(entries),
                Err(e) => first_err = Some(e),
            }
        }
        if let Some(e) = first_err {
            return Err(LiveError::Query(e));
        }
        let top = merge_ranked(&lists, q.k);
        let mut counters =
            self.query_counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        counters.queries += 1;
        counters.elapsed_secs += t0.elapsed().as_secs_f64();
        Ok((top, route))
    }

    /// Answer one admitted window of queries as a batch: the planner
    /// routes the whole window together ([`Planner::route_batch`] — costs
    /// amortized over shared probes, routes provably identical to solo
    /// planning), each shard receives the window as **one** message and
    /// executes probe-identical queries — same snapped `(B(t1), B(t2))`
    /// pair, `k`, route, and tolerance — with a single index probe whose
    /// answer is shared across the group, and the per-shard answer lists
    /// are gathered and merged per query. The answers are bit-identical to
    /// issuing every query through [`IngestEngine::query`] one at a time
    /// (the batch agreement suite pins this); what the batch buys is
    /// amortization, not approximation.
    pub fn query_batch(&self, qs: &[ServeQuery]) -> Result<Vec<TopK>, LiveError> {
        if qs.is_empty() {
            return Ok(Vec::new());
        }
        let t0 = Instant::now();
        let routes = self.planner().route_batch(qs, Some(self.freshness()));
        let base_qid = self.next_qid.fetch_add(qs.len() as u64, Ordering::Relaxed);
        let (reply_tx, reply_rx) = channel();
        let jobs: Vec<LiveJob> = qs
            .iter()
            .zip(&routes)
            .enumerate()
            .map(|(i, (q, route))| LiveJob {
                qid: base_qid + i as u64,
                query: *q,
                route: *route,
                reply: reply_tx.clone(),
            })
            .collect();
        drop(reply_tx);
        for worker in &self.workers {
            worker.tx.send(ToShard::QueryBatch(jobs.clone())).map_err(|_| LiveError::WorkerGone)?;
        }
        let w = self.workers.len();
        let mut partial: Vec<Vec<Vec<(ObjectId, f64)>>> = vec![Vec::new(); qs.len()];
        let mut first_err: Option<String> = None;
        for _ in 0..qs.len() * w {
            let reply = reply_rx.recv().map_err(|_| LiveError::WorkerGone)?;
            self.absorb_status(&reply);
            let i = (reply.qid - base_qid) as usize;
            match reply.result {
                Ok(entries) => partial[i].push(entries),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(LiveError::Query(e));
        }
        let answers: Vec<TopK> =
            partial.iter().zip(qs).map(|(lists, q)| merge_ranked(lists, q.k)).collect();
        let mut counters =
            self.query_counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        counters.queries += qs.len() as u64;
        counters.elapsed_secs += t0.elapsed().as_secs_f64();
        Ok(answers)
    }

    /// [`IngestEngine::query_routed`], joined into an existing
    /// distributed trace: an `engine.query` span is opened as a child of
    /// `parent` on `trace`. The live scatter path does not surface
    /// per-shard probe timings to the gatherer (its replies carry shard
    /// *status*, not spans), so the live engine contributes the engine
    /// span only; per-shard children are a serve-backend feature. With a
    /// noop `sink` this costs a branch.
    pub fn query_spanned(
        &self,
        q: ServeQuery,
        trace: TraceId,
        parent: SpanId,
        sink: &SpanSink,
    ) -> Result<(TopK, Route), LiveError> {
        let mut span = sink.child(trace, parent, "engine.query");
        let result = self.query_routed(q);
        if let Ok((_, route)) = &result {
            span.attr("route", AttrValue::Sym(route.name()));
            span.attr("k", AttrValue::U64(q.k as u64));
            span.attr("shards", AttrValue::U64(self.workers.len() as u64));
        }
        span.finish();
        result
    }

    /// Execute a mixed append/query trace pipelined: appends are durable
    /// (WAL-synced per batch) before any later query is scattered, and the
    /// FIFO shard channels guarantee every query observes every append
    /// that precedes it in the trace. Queries demand exact answers.
    pub fn run_ops(&mut self, ops: &[LiveOp]) -> Result<LiveOutcome, LiveError> {
        self.run_trace(ops, None)
    }

    /// Like [`IngestEngine::run_ops`] but issuing every query with the
    /// given ε-tolerance instead of demanding exactness (exercises the
    /// approximate routes and the staleness-audited cache).
    pub fn run_ops_with_tolerance(
        &mut self,
        ops: &[LiveOp],
        eps: f64,
    ) -> Result<LiveOutcome, LiveError> {
        self.run_trace(ops, Some(eps))
    }

    fn run_trace(&mut self, ops: &[LiveOp], eps: Option<f64>) -> Result<LiveOutcome, LiveError> {
        let t0 = Instant::now();
        let queries: usize = ops.iter().filter(|op| matches!(op, LiveOp::Query(_))).count();
        let base_qid = self.next_qid.fetch_add(queries as u64, Ordering::Relaxed);
        let mut scattered = 0u64;
        let mut gather = TraceGather::new(base_qid, self.workers.len());
        // One reply channel for the whole trace; every job carries a clone.
        let (reply_tx, reply_rx) = channel();
        let mut appends = 0u64;
        let mut trace_err: Option<LiveError> = None;
        for op in ops {
            match op {
                LiveOp::Appends(batch) => {
                    if let Err(e) = self.append_batch(batch) {
                        trace_err = Some(e);
                        break;
                    }
                    appends += batch.len() as u64;
                }
                LiveOp::Query(q) => {
                    // Absorb any replies already waiting before routing, so
                    // the planner's freshness view (built mass, profiles —
                    // the ε re-validation inputs) tracks completed epoch
                    // swaps instead of being frozen at trace start.
                    while let Ok(reply) = reply_rx.try_recv() {
                        self.absorb_status(&reply);
                        gather.absorb(reply);
                    }
                    let q = match eps {
                        None => ServeQuery::exact(q.t1, q.t2, q.k),
                        Some(eps) => ServeQuery::approx(q.t1, q.t2, q.k, eps),
                    };
                    let route = self.route_for(&q);
                    let qid = base_qid + scattered;
                    scattered += 1;
                    gather.scattered(q.k);
                    let job = LiveJob { qid, query: q, route, reply: reply_tx.clone() };
                    if let Err(e) = self.scatter(job) {
                        trace_err = Some(e);
                        break;
                    }
                }
            }
        }
        drop(reply_tx);
        // Drain every outstanding reply even on the error path — a reply
        // left behind would be mis-attributed to a later query.
        while gather.received < gather.expected() {
            match reply_rx.recv() {
                Ok(reply) => {
                    self.absorb_status(&reply);
                    gather.absorb(reply);
                }
                Err(_) => {
                    trace_err.get_or_insert(LiveError::WorkerGone);
                    break;
                }
            }
        }
        if let Some(e) = trace_err {
            return Err(e);
        }
        if let Some(e) = gather.first_err {
            return Err(LiveError::Query(e));
        }
        let answers: Vec<TopK> =
            gather.answers.into_iter().map(|a| a.expect("all shards replied")).collect();
        let elapsed_secs = t0.elapsed().as_secs_f64();
        let mut counters =
            self.query_counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        counters.queries += answers.len() as u64;
        counters.elapsed_secs += elapsed_secs;
        drop(counters);
        Ok(LiveOutcome { answers, appends, elapsed_secs })
    }

    /// Fold one reply's piggybacked status into the shard-status view.
    /// Replies from concurrent `&self` queries can arrive out of order;
    /// the shard stamps each status monotonically, so only a strictly
    /// newer view replaces the stored one (an older reply must never
    /// regress the planner's freshness to a superseded generation).
    fn absorb_status(&self, reply: &ShardReply) {
        let mut statuses = self.statuses.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if reply.status.seq > statuses[reply.shard].seq {
            statuses[reply.shard] = reply.status;
        }
    }

    /// Checkpoint: barrier every shard (so everything durable is also
    /// applied), publish a generation image next to the WAL — the master
    /// set, plus every shard's frozen generation captured page-for-page —
    /// then truncate the WAL. The image is stamped `wal.epoch() + 1` and
    /// written tmp+rename *before* the truncation bumps the epoch to that
    /// stamp, so a crash anywhere in between recovers exactly (see
    /// [`IngestEngine::new`]'s recovery contract).
    pub fn checkpoint(&mut self) -> Result<(), LiveError> {
        let t0 = Instant::now();
        self.write_checkpoint_image()?;
        self.wal.truncate()?;
        self.checkpoints += 1;
        self.obs.checkpoint_us.record(elapsed_us(t0));
        Ok(())
    }

    /// Fault-injection hook: the first half of [`IngestEngine::checkpoint`]
    /// only — publishes the image but "crashes" before the WAL truncation.
    /// Recovery after this must produce the same answers as a completed
    /// checkpoint (the epoch gate skips the already-absorbed records).
    #[doc(hidden)]
    pub fn checkpoint_without_truncate(&mut self) -> Result<(), LiveError> {
        self.write_checkpoint_image()
    }

    /// Gather every shard's installed generation (the gather doubles as
    /// the apply barrier) and publish the checkpoint image.
    fn write_checkpoint_image(&mut self) -> Result<(), LiveError> {
        let (cp_tx, cp_rx) = channel();
        for worker in &self.workers {
            worker
                .tx
                .send(ToShard::Checkpoint(cp_tx.clone()))
                .map_err(|_| LiveError::WorkerGone)?;
        }
        drop(cp_tx);
        let w = self.workers.len();
        let mut shards: Vec<Option<ShardCheckpoint>> = (0..w).map(|_| None).collect();
        for _ in 0..w {
            let cp = cp_rx.recv().map_err(|_| LiveError::WorkerGone)?;
            let shard = cp.shard;
            shards[shard] = Some(cp);
        }
        let Some(path) = &self.image_path else { return Ok(()) };
        let mut writer = ImageWriter::create(path)?;
        // The master set travels in columnar (PAX) form: one shared offset
        // table plus contiguous t/v columns — the same layout the shards'
        // mutable tails live in, so recovery rehydrates without reshaping.
        writer.add_blob("live_set", &self.master.to_columnar().to_bytes())?;
        let mut meta = Vec::with_capacity(25);
        meta.extend_from_slice(&(w as u64).to_le_bytes());
        meta.extend_from_slice(&(self.params.block).to_le_bytes());
        meta.extend_from_slice(&(self.config_kmax as u64).to_le_bytes());
        meta.push(self.config_flags);
        writer.add_blob("engine", &meta)?;
        for cp in shards.into_iter().flatten() {
            if let Some(gen) = &cp.gen {
                gen.add_to_image(&mut writer, &format!("s{}/", cp.shard), &cp.frozen_end)
                    .map_err(|e| LiveError::Snapshot(e.to_string()))?;
            }
        }
        writer.finish(self.wal.epoch() + 1)?;
        Ok(())
    }

    /// A snapshot of everything ingested and served so far.
    pub fn report(&self) -> LiveReport {
        let statuses = self.statuses.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let counters =
            self.query_counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut swap_pause = PauseHistogram::default();
        for s in statuses.iter() {
            swap_pause.merge(&s.swap_pause);
        }
        LiveReport {
            workers: self.workers.len(),
            appends: self.appends,
            batches: self.batches,
            queries: counters.queries,
            elapsed_secs: counters.elapsed_secs,
            wal: self.wal.io_stats(),
            index_io: statuses.iter().map(|s| s.io).sum(),
            rebuilds: statuses.iter().map(|s| s.rebuilds).sum(),
            rebuilds_in_flight: statuses.iter().filter(|s| s.rebuild_in_flight).count() as u64,
            index_bytes: statuses.iter().map(|s| s.size_bytes).sum(),
            build_secs: statuses.iter().map(|s| s.build_secs).sum(),
            swap_pause,
            queries_during_rebuild: statuses.iter().map(|s| s.queries_during_rebuild).sum(),
            cache_hits: statuses.iter().map(|s| s.cache_hits).sum(),
            cache_lookups: statuses.iter().map(|s| s.cache_lookups).sum(),
            cache_invalidations: statuses.iter().map(|s| s.cache_invalidations).sum(),
            tail_segments: statuses.iter().map(|s| s.tail_segments).sum(),
            tail_bytes: statuses.iter().map(|s| s.tail_bytes).sum(),
            tail_objects: statuses.iter().map(|s| s.tail_objects).sum(),
            built_mass: statuses.iter().map(|s| s.built_mass).sum(),
            live_mass: self.master.total_mass(),
            generations: statuses.iter().map(|s| s.generation).max().unwrap_or(0),
            checkpoints: self.checkpoints,
            preloaded_shards: self.preloaded_shards,
        }
    }

    /// Mirror the current [`LiveReport`] into the process metric
    /// [`Registry`] as gauges, so one scrape of the registry carries the
    /// live tier alongside the serve tier. `report()` stays the
    /// programmatic surface; these gauges are the same numbers under
    /// stable metric names.
    pub fn sync_obs(&self) {
        let registry = &self.obs.registry;
        if registry.is_noop() {
            return;
        }
        let r = self.report();
        let g = |name: &str, help: &str, v: u64| registry.gauge(name, help).set_u64(v);
        g("chronorank_live_workers", "ingest shard count", r.workers as u64);
        g("chronorank_live_appends", "records appended (WAL-durable)", r.appends);
        g("chronorank_live_batches", "durable group-commits", r.batches);
        g("chronorank_live_queries", "queries answered by the live engine", r.queries);
        g("chronorank_live_rebuilds", "completed generation rebuilds", r.rebuilds);
        g(
            "chronorank_live_rebuilds_in_flight",
            "shards with a rebuild in flight",
            r.rebuilds_in_flight,
        );
        g("chronorank_live_index_bytes", "bytes across published generations", r.index_bytes);
        g("chronorank_live_tail_segments", "appended segments in mutable tails", r.tail_segments);
        self.obs.tail_bytes.set_u64(r.tail_bytes);
        self.obs.tail_objects.set_u64(r.tail_objects);
        g(
            "chronorank_live_queries_during_rebuild",
            "queries served while a rebuild was in flight",
            r.queries_during_rebuild,
        );
        g("chronorank_live_cache_hits", "staleness-audited cache hits", r.cache_hits);
        g("chronorank_live_cache_lookups", "staleness-audited cache lookups", r.cache_lookups);
        g(
            "chronorank_live_cache_invalidations",
            "cache entries dropped as eps-stale",
            r.cache_invalidations,
        );
        g("chronorank_live_checkpoints", "checkpoints taken (WAL truncations)", r.checkpoints);
        g(
            "chronorank_live_preloaded_shards",
            "shards reopened page-for-page from the checkpoint image",
            r.preloaded_shards,
        );
        g("chronorank_live_generations", "highest generation published", r.generations);
        g("chronorank_live_wal_writes", "WAL block flushes", r.wal.wal_writes);
        g("chronorank_live_wal_bytes", "WAL payload bytes", r.wal.wal_bytes);
        g("chronorank_live_index_reads", "index block reads across generations", r.index_io.reads);
    }

    fn scatter(&self, job: LiveJob) -> Result<(), LiveError> {
        for worker in &self.workers {
            worker.tx.send(ToShard::Query(job.clone())).map_err(|_| LiveError::WorkerGone)?;
        }
        Ok(())
    }
}

impl Drop for IngestEngine {
    fn drop(&mut self) {
        for worker in &self.workers {
            worker.tx.send(ToShard::Shutdown).ok();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                handle.join().ok();
            }
        }
    }
}
