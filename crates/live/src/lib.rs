//! # chronorank-live — WAL-backed streaming ingestion with epoch-swapped
//! # indexes under continuous query traffic
//!
//! The paper's §4 extension handles *updates*: new segments appended at
//! each object's right time edge (stock volumes ticking, stations
//! reporting), with index maintenance amortized by periodic rebuilds once
//! the appended mass doubles. `chronorank-core` provides those primitives
//! per index; this crate is the **system** around them — an
//! [`IngestEngine`] that accepts a live append stream while
//! `chronorank-serve`-style query traffic keeps flowing:
//!
//! 1. **Durability first** — every accepted append is framed into a
//!    block-device-backed [`chronorank_storage::WriteAheadLog`] (CRC'd
//!    records, one group-commit sync per batch) *before* it is
//!    acknowledged. Crash recovery replays the log over the latest
//!    checkpoint snapshot, and [`IngestEngine::checkpoint`] truncates it.
//! 2. **Mutable tails** — each of `W` ingest shards applies its appends to
//!    a live, in-memory copy of its partition immediately. Queries answer
//!    as *frozen-generation candidates ∪ tail-touched objects*, exactly
//!    rescored on the live curves, so results are **exact-fresh at every
//!    point between rebuilds**: the frozen index only nominates
//!    candidates, never scores the answer.
//! 3. **Epoch-swapped generations** — the §4 geometric mass-doubling
//!    policy (or a full tail) triggers a rebuild: a builder thread
//!    constructs fresh EXACT3/APPX2(+)/breakpoint structures from a
//!    snapshot **off the serving thread**, hands the finished immutable
//!    `Arc` generation to the shard, and exits; the shard installs it
//!    with an `Arc` swap — a microsecond pause measured in
//!    [`LiveReport::swap_pause`]. Readers never block on a build, and the
//!    shard probes the shared snapshot directly in-thread (the whole
//!    index stack is `Send + Sync`).
//! 4. **ε re-validation** — an approximate generation built over mass
//!    `M_built` carries an absolute bound `ε·M_built`. As appends grow the
//!    live mass, the planner
//!    ([`chronorank_serve::Planner::route_with_freshness`]) restates that
//!    bound against `M_live` before admitting the route, and the
//!    shard-local result cache keeps a per-entry *staleness account*:
//!    a snapped answer is served only while
//!    `ε·M_built + appended-mass-overlapping ≤ ε_query·M_live`, else the
//!    entry is invalidated and recomputed. No stale approximate answer
//!    ever escapes the budget.
//!
//! ## Example
//!
//! ```
//! use chronorank_core::AppendRecord;
//! use chronorank_live::{IngestEngine, LiveConfig};
//! use chronorank_serve::ServeQuery;
//! use chronorank_core::TemporalSet;
//! use chronorank_curve::PiecewiseLinear;
//!
//! let curves: Vec<_> = (0..16)
//!     .map(|i| {
//!         PiecewiseLinear::from_points(&[(0.0, i as f64), (50.0, (16 - i) as f64)]).unwrap()
//!     })
//!     .collect();
//! let seed = TemporalSet::from_curves(curves).unwrap();
//! let mut engine =
//!     IngestEngine::new(&seed, LiveConfig { workers: 2, ..Default::default() }).unwrap();
//! // Stream new readings in while querying: answers include the appends.
//! engine.append_batch(&[AppendRecord { object: 3, t: 60.0, v: 500.0 }]).unwrap();
//! let top = engine.query(ServeQuery::exact(40.0, 60.0, 3)).unwrap();
//! assert_eq!(top.rank(0).0, 3, "the fresh append dominates the right edge");
//! println!("{}", engine.report());
//! ```

mod config;
mod engine;
mod generation;
mod obs;
mod report;
mod shard;

pub use config::{LiveConfig, RebuildPolicy};
pub use engine::{IngestEngine, LiveError, LiveOutcome};
pub use report::{LiveReport, PauseHistogram, PAUSE_BUCKETS_US};

// Re-export the trace vocabulary so callers need not name the workloads
// crate for the common path.
pub use chronorank_core::AppendRecord;
pub use chronorank_workloads::LiveOp;
