//! Live-tier instrumentation: ingest-path histograms the engine bumps
//! around its durability points, plus the handles each shard thread
//! carries for the swap-pause / rebuild timings it alone observes.
//!
//! Handles are resolved once at engine construction (from the process
//! [`Registry::global`]); the append and query hot paths never touch the
//! registry itself.

use chronorank_obs::{Gauge, Histogram, Registry};

/// The ingest engine's observability handles (see module docs).
pub(crate) struct LiveObs {
    pub registry: Registry,
    /// One WAL record framed + written (pre-sync), µs.
    pub wal_append_us: Histogram,
    /// One group-commit sync, µs.
    pub wal_fsync_us: Histogram,
    /// Records per durable group-commit.
    pub batch_size: Histogram,
    /// One full checkpoint (gather + image publish + truncate), µs.
    pub checkpoint_us: Histogram,
    /// Boot-time recovery (WAL open, image load, replay), µs.
    pub recovery_us: Gauge,
    /// Bytes held by the shards' columnar tails (offset table + columns).
    pub tail_bytes: Gauge,
    /// Objects with a non-empty appended tail.
    pub tail_objects: Gauge,
    /// Handles cloned into every shard thread.
    pub shard: ShardObs,
}

/// The per-shard slice of [`LiveObs`]: cheap `Arc` clones handed to each
/// shard thread at spawn, recorded from inside the shard loop.
#[derive(Clone)]
pub(crate) struct ShardObs {
    /// Epoch-swap pause (the reader-visible cost of installing a rebuilt
    /// generation), µs.
    pub swap_pause_us: Histogram,
    /// Off-thread generation build duration, µs.
    pub rebuild_us: Histogram,
}

impl LiveObs {
    /// Resolve every handle against `registry`.
    pub fn attach(registry: &Registry) -> Self {
        Self {
            registry: registry.clone(),
            wal_append_us: registry.histogram(
                "chronorank_live_wal_append_us",
                "one WAL record framed and written (before the group-commit sync), microseconds",
            ),
            wal_fsync_us: registry.histogram(
                "chronorank_live_wal_fsync_us",
                "one durable group-commit sync, microseconds",
            ),
            batch_size: registry.histogram(
                "chronorank_live_batch_size",
                "records accepted per durable group-commit",
            ),
            checkpoint_us: registry.histogram(
                "chronorank_live_checkpoint_us",
                "one checkpoint: shard gather, image publish, WAL truncation, microseconds",
            ),
            recovery_us: registry.gauge(
                "chronorank_live_recovery_us",
                "boot-time recovery (WAL open, checkpoint image load, replay), microseconds",
            ),
            tail_bytes: registry
                .gauge("chronorank_live_tail_bytes", "bytes held by the shards' columnar tails"),
            tail_objects: registry
                .gauge("chronorank_live_tail_objects", "objects with a non-empty appended tail"),
            shard: ShardObs {
                swap_pause_us: registry.histogram(
                    "chronorank_live_swap_pause_us",
                    "epoch-swap pause installing a rebuilt generation, microseconds",
                ),
                rebuild_us: registry.histogram(
                    "chronorank_live_rebuild_us",
                    "off-thread generation build duration, microseconds",
                ),
            },
        }
    }
}
