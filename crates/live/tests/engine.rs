//! Integration tests for the live ingest engine: freshness, epoch swaps,
//! durability, and the staleness-audited cache.

use chronorank_core::{AppendRecord, TemporalSet};
use chronorank_live::{IngestEngine, LiveConfig, RebuildPolicy};
use chronorank_serve::ServeQuery;
use chronorank_workloads::{AppendStream, AppendStreamConfig, StockConfig, StockGenerator};

fn stock_stream(objects: usize, batch: usize) -> AppendStream {
    let generator =
        StockGenerator::new(StockConfig { objects, days: 8, readings_per_day: 6, seed: 17 });
    AppendStream::from_generator(
        &generator,
        AppendStreamConfig { base_fraction: 0.5, batch, ..Default::default() },
    )
}

fn assert_top_matches(want: &chronorank_core::TopK, got: &chronorank_core::TopK, ctx: &str) {
    assert_eq!(want.len(), got.len(), "{ctx}: length");
    assert_eq!(want.ids(), got.ids(), "{ctx}: ids");
    for (j, (ws, gs)) in want.scores().iter().zip(got.scores()).enumerate() {
        assert_eq!(ws.to_bits(), gs.to_bits(), "{ctx} rank {j}: {ws} vs {gs}");
    }
}

#[test]
fn appends_are_visible_to_the_next_query() {
    let stream = stock_stream(10, 8);
    let seed = stream.base_set();
    let mut engine =
        IngestEngine::new(&seed, LiveConfig { workers: 2, ..Default::default() }).unwrap();
    let mut oracle = seed.clone();
    for (i, batch) in stream.batches().enumerate().take(6) {
        engine.append_batch(batch).unwrap();
        for &rec in batch {
            oracle.apply(rec).unwrap();
        }
        let (t1, t2) = (oracle.t_max() - 2.0, oracle.t_max());
        let got = engine.query(ServeQuery::exact(t1, t2, 5)).unwrap();
        let want = oracle.top_k_bruteforce(t1, t2, 5);
        assert_top_matches(&want, &got, &format!("batch {i}"));
    }
    let report = engine.report();
    assert_eq!(report.appends, engine.report().appends);
    assert!(report.appends > 0 && report.queries == 6);
    assert!(report.wal.wal_writes > 0, "appends must hit the WAL");
    assert!(report.tail_segments > 0 || report.rebuilds > 0);
}

#[test]
fn mass_doubling_triggers_an_epoch_swap_without_blocking_readers() {
    let stream = stock_stream(6, 4);
    let seed = stream.base_set();
    let config = LiveConfig {
        workers: 1,
        rebuild: RebuildPolicy { mass_factor: 1.05, max_tail_segments: 10_000 },
        ..Default::default()
    };
    let mut engine = IngestEngine::new(&seed, config).unwrap();
    let mut oracle = seed.clone();
    for batch in stream.batches() {
        engine.append_batch(batch).unwrap();
        for &rec in batch {
            oracle.apply(rec).unwrap();
        }
        // Queries keep being answered correctly whether or not a rebuild
        // is in flight at this moment.
        let (t1, t2) = (oracle.t_min(), oracle.t_max());
        let got = engine.query(ServeQuery::exact(t1, t2, 4)).unwrap();
        let want = oracle.top_k_bruteforce(t1, t2, 4);
        assert_top_matches(&want, &got, "during ingest");
    }
    // Let in-flight builds land, then confirm swaps happened.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        engine.query(ServeQuery::exact(seed.t_min(), oracle.t_max(), 3)).unwrap();
        let report = engine.report();
        if report.rebuilds > 0 && report.rebuilds_in_flight == 0 {
            assert!(report.generations > 0);
            assert_eq!(report.swap_pause.count(), report.rebuilds);
            break;
        }
        assert!(std::time::Instant::now() < deadline, "rebuild never landed: {report}");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

#[test]
fn tail_length_policy_also_triggers_rebuilds() {
    let stream = stock_stream(8, 16);
    let seed = stream.base_set();
    let config = LiveConfig {
        workers: 2,
        rebuild: RebuildPolicy { mass_factor: f64::INFINITY, max_tail_segments: 8 },
        ..Default::default()
    };
    let mut engine = IngestEngine::new(&seed, config).unwrap();
    for batch in stream.batches() {
        engine.append_batch(batch).unwrap();
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        engine.query(ServeQuery::exact(seed.t_min(), seed.t_max(), 2)).unwrap();
        if engine.report().rebuilds > 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "tail policy never fired");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

#[test]
fn checkpoint_then_recover_reproduces_answers() {
    let dir = std::env::temp_dir().join(format!("chronorank-live-ckpt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let stream = stock_stream(9, 8);
    let seed = stream.base_set();
    let config = LiveConfig { workers: 2, wal_dir: Some(dir.clone()), ..Default::default() };
    let batches: Vec<_> = stream.batches().collect();
    let mid = batches.len() / 2;
    let q = |set: &TemporalSet| {
        let (t1, t2) = (set.t_min() + 0.25 * set.span(), set.t_max());
        ServeQuery::exact(t1, t2, 6)
    };
    let want;
    {
        let mut engine = IngestEngine::new(&seed, config.clone()).unwrap();
        for batch in &batches[..mid] {
            engine.append_batch(batch).unwrap();
        }
        engine.checkpoint().unwrap();
        assert_eq!(engine.report().checkpoints, 1);
        for batch in &batches[mid..] {
            engine.append_batch(batch).unwrap();
        }
        want = engine.query(q(engine.live_set())).unwrap();
        // Simulated crash: engine dropped without another checkpoint.
    }
    {
        let recovered = IngestEngine::new(&seed, config.clone()).unwrap();
        let got = recovered.query(q(recovered.live_set())).unwrap();
        assert_top_matches(&want, &got, "post-recovery");
        // The recovered master equals the fully applied stream.
        assert_eq!(recovered.live_set().num_segments(), stream.full_set().num_segments());
        // And the frozen generations came back page-for-page from the
        // checkpoint image rather than being rebuilt.
        assert_eq!(recovered.report().preloaded_shards, 2, "cold start must serve from the image");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_checkpoint_recovers_idempotently() {
    // The crash window the epoch stamp exists for: the image is published
    // (tmp+rename) but the process dies before the WAL truncation. The
    // log then still holds every record the image already absorbed; the
    // recovery gate must skip them all, and recovering twice must change
    // nothing (fault injection via the `checkpoint_without_truncate` hook).
    let dir = std::env::temp_dir().join(format!("chronorank-live-crashwin-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let stream = stock_stream(8, 8);
    let seed = stream.base_set();
    let config = LiveConfig { workers: 2, wal_dir: Some(dir.clone()), ..Default::default() };
    let q = |set: &TemporalSet| {
        let (t1, t2) = (set.t_min() + 0.25 * set.span(), set.t_max());
        ServeQuery::exact(t1, t2, 6)
    };
    let want;
    let want_segments;
    {
        let mut engine = IngestEngine::new(&seed, config.clone()).unwrap();
        for batch in stream.batches() {
            engine.append_batch(batch).unwrap();
        }
        engine.checkpoint_without_truncate().unwrap();
        assert_eq!(engine.report().checkpoints, 0, "an interrupted checkpoint must not count");
        want = engine.query(q(engine.live_set())).unwrap();
        want_segments = engine.live_set().num_segments();
        // Simulated crash: dropped between image publish and truncation.
    }
    for attempt in 0..2 {
        // Recover twice over the same (image, un-truncated WAL) pair:
        // answers must be bit-identical both times — nothing is lost by
        // skipping the absorbed log, nothing is double-applied.
        let recovered = IngestEngine::new(&seed, config.clone()).unwrap();
        assert_eq!(
            recovered.live_set().num_segments(),
            want_segments,
            "recovery {attempt}: segment count"
        );
        let got = recovered.query(q(recovered.live_set())).unwrap();
        assert_top_matches(&want, &got, &format!("recovery {attempt}"));
        assert_eq!(
            recovered.report().preloaded_shards,
            2,
            "recovery {attempt}: generations must reopen from the image"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn approximate_queries_respect_the_eps_budget_under_appends() {
    let stream = stock_stream(16, 8);
    let seed = stream.base_set();
    let mut engine =
        IngestEngine::new(&seed, LiveConfig { workers: 2, ..Default::default() }).unwrap();
    let mut oracle = seed.clone();
    let eps = 0.3;
    let mut cacheable_seen = false;
    for batch in stream.batches() {
        engine.append_batch(batch).unwrap();
        for &rec in batch {
            oracle.apply(rec).unwrap();
        }
        let (t1, t2) = (oracle.t_min() + 0.3 * oracle.span(), oracle.t_min() + 0.8 * oracle.span());
        let q = ServeQuery::approx(t1, t2, 4, eps);
        let route = engine.route_for(&q);
        cacheable_seen |= route.cacheable();
        let got = engine.query(q).unwrap();
        // Every returned score is within the ε·M budget of that object's
        // live truth (answers are exactly rescored, so this mostly guards
        // the cached/stale path).
        let budget = eps * oracle.total_mass() + 1e-9;
        for &(id, s) in got.entries() {
            let truth = oracle.score(id, t1, t2).unwrap();
            assert!((s - truth).abs() <= budget, "object {id}: {s} vs {truth}");
        }
    }
    assert!(cacheable_seen, "the tolerance stream must exercise a cacheable route");
    let report = engine.report();
    assert!(report.cache_lookups > 0, "cacheable routes must consult the cache");
}

#[test]
fn eps_invalidating_appends_evict_cached_answers() {
    use chronorank_curve::PiecewiseLinear;
    // One short object (room to append inside the query window) and one
    // long one (pins the domain so the snapped window covers the appends).
    let c0 = PiecewiseLinear::from_points(&[(0.0, 1.0), (10.0, 1.0)]).unwrap();
    let c1 = PiecewiseLinear::from_points(&[(0.0, 1.0), (100.0, 1.0)]).unwrap();
    let seed = TemporalSet::from_curves(vec![c0, c1]).unwrap();
    // Rebuilds disabled: only the staleness audit stands between a cached
    // entry and the appended mass.
    let config = LiveConfig {
        workers: 1,
        rebuild: RebuildPolicy { mass_factor: f64::INFINITY, max_tail_segments: usize::MAX },
        ..Default::default()
    };
    let mut engine = IngestEngine::new(&seed, config).unwrap();
    let q = ServeQuery::approx(0.0, 100.0, 2, 0.3);
    assert!(engine.route_for(&q).cacheable(), "scenario must exercise a cacheable route");
    engine.query(q).unwrap(); // populate
    engine.query(q).unwrap(); // hit
    let before = engine.report();
    assert!(before.cache_hits >= 1, "second identical query must hit: {before}");
    assert_eq!(before.cache_invalidations, 0);
    // Massive appends to the short object, *inside* the snapped window:
    // mass far beyond the ε budget of any later lookup.
    for t in 11..=60 {
        engine.append(AppendRecord { object: 0, t: t as f64, v: 50.0 }).unwrap();
    }
    let top = engine.query(q).unwrap();
    let after = engine.report();
    assert!(
        after.cache_invalidations >= 1,
        "the ε-stale entry must be evicted, not served: {after}"
    );
    // And the recomputed answer sees the appended mass: object 0 now wins.
    assert_eq!(top.rank(0).0, 0, "fresh answer must include the appended mass: {top:?}");
}

#[test]
fn rejected_appends_do_not_corrupt_state() {
    let stream = stock_stream(5, 4);
    let seed = stream.base_set();
    let mut engine =
        IngestEngine::new(&seed, LiveConfig { workers: 1, ..Default::default() }).unwrap();
    // Appending into the past must fail…
    let bad = AppendRecord { object: 0, t: seed.t_min() - 5.0, v: 1.0 };
    assert!(engine.append(bad).is_err());
    // …and to an unknown object too.
    let bad = AppendRecord { object: 10_000, t: seed.t_max() + 1.0, v: 1.0 };
    assert!(engine.append(bad).is_err());
    // The engine still ingests and serves.
    let good = AppendRecord { object: 0, t: seed.object(0).unwrap().curve.end() + 1.0, v: 9.0 };
    engine.append(good).unwrap();
    let top = engine.query(ServeQuery::exact(seed.t_min(), seed.t_max() + 1.0, 2)).unwrap();
    assert_eq!(top.len(), 2);
}

#[test]
fn report_renders() {
    let stream = stock_stream(5, 4);
    let seed = stream.base_set();
    let mut engine =
        IngestEngine::new(&seed, LiveConfig { workers: 2, ..Default::default() }).unwrap();
    engine.append_batch(stream.batches().next().unwrap()).unwrap();
    engine.query(ServeQuery::exact(seed.t_min(), seed.t_max(), 2)).unwrap();
    let text = engine.report().to_string();
    assert!(text.contains("live report"), "{text}");
    assert!(text.contains("wal:"), "{text}");
}

#[test]
fn ingest_engine_is_send_and_sync() {
    // The network tier shares one engine behind an RwLock: queries (&self)
    // overlap as readers, appends (&mut self) serialize as writers.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IngestEngine>();
}

#[test]
fn concurrent_readers_query_one_live_engine() {
    let stream = stock_stream(24, 16);
    let seed = stream.base_set();
    let mut engine = IngestEngine::new(&seed, LiveConfig::default()).unwrap();
    // Apply half the appends so tails are non-trivial.
    let records = stream.records();
    engine.append_batch(&records[..records.len() / 2]).unwrap();
    let live = engine.live_set().clone();
    let (t1, t2) = (live.t_min() + 0.3 * live.span(), live.t_min() + 0.8 * live.span());
    let want = engine.query(ServeQuery::exact(t1, t2, 5)).unwrap();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let (engine, want) = (&engine, &want);
            scope.spawn(move || {
                for _ in 0..10 {
                    let got = engine.query(ServeQuery::exact(t1, t2, 5)).unwrap();
                    assert_eq!(got.ids(), want.ids(), "thread {t}");
                    for (a, b) in got.scores().iter().zip(want.scores()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "thread {t}");
                    }
                }
            });
        }
    });
    assert_eq!(engine.report().queries, 1 + 4 * 10);
}
