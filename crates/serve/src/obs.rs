//! Serve-tier instrumentation: pre-registered handles the engine bumps
//! on its hot paths, plus the slow-query flight recorder.
//!
//! Every handle is resolved once, at engine construction — the scatter
//! hot path never touches the registry mutex. With a
//! [`Registry::noop`] source every operation below degenerates to a
//! branch on `None`, which is the uninstrumented side of the
//! `paper_bench obs` overhead gate.

use crate::planner::Route;
use chronorank_obs::{Counter, FlightRecorder, Histogram, Registry};

/// How many [`chronorank_obs::QueryTrace`]s the engine retains.
pub(crate) const RECORDER_CAPACITY: usize = 64;
/// Default slow-query threshold: queries at or above this many µs are
/// traced. Tunable per engine via
/// [`crate::ServeEngine::set_slow_query_threshold_us`].
pub(crate) const DEFAULT_SLOW_QUERY_US: u64 = 1_000;

/// The serve engine's observability handles (see module docs).
pub(crate) struct ServeObs {
    pub registry: Registry,
    /// End-to-end latency per route, µs.
    pub route_latency_us: [Histogram; 5],
    /// Planner decisions per route.
    pub route_decisions: [Counter; 5],
    /// Shard-level result-cache hits / misses (cacheable routes only).
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub recorder: FlightRecorder,
}

impl ServeObs {
    /// Count one shard-level cache outcome.
    #[inline]
    pub fn shard_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.inc();
        } else {
            self.cache_misses.inc();
        }
    }

    /// Resolve every handle against `registry`. A no-op registry yields
    /// no-op handles and a no-op recorder.
    pub fn attach(registry: &Registry) -> Self {
        let latency = |route: Route| {
            registry.histogram_with(
                "chronorank_serve_route_latency_us",
                "end-to-end serve latency per planner route, microseconds",
                &[("route", route.name())],
            )
        };
        let decisions = |route: Route| {
            registry.counter_with(
                "chronorank_serve_route_total",
                "planner routing decisions per route",
                &[("route", route.name())],
            )
        };
        let recorder = if registry.is_noop() {
            FlightRecorder::noop()
        } else {
            FlightRecorder::new(RECORDER_CAPACITY, DEFAULT_SLOW_QUERY_US)
        };
        Self {
            registry: registry.clone(),
            route_latency_us: Route::ALL.map(latency),
            route_decisions: Route::ALL.map(decisions),
            cache_hits: registry.counter(
                "chronorank_serve_cache_hits_total",
                "shard result-cache hits across all serve shards",
            ),
            cache_misses: registry.counter(
                "chronorank_serve_cache_misses_total",
                "shard result-cache misses across all serve shards",
            ),
            recorder,
        }
    }
}
