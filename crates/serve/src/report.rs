//! Aggregated serving statistics.

use crate::planner::Route;
use chronorank_storage::IoStats;

/// Per-route serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RouteStats {
    /// Queries the planner sent down this route.
    pub queries: u64,
    /// Coordinator-side wall seconds spent on those queries (for streams,
    /// the stream's elapsed time is apportioned evenly over its queries).
    pub secs: f64,
}

/// A snapshot of everything the engine has served so far.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Worker (shard) count.
    pub workers: usize,
    /// Total queries answered.
    pub queries: u64,
    /// Total coordinator wall seconds across all queries/streams.
    pub elapsed_secs: f64,
    /// Per-route counters, [`Route::ALL`] order.
    pub routes: [RouteStats; 5],
    /// Shard-level result-cache hits (one lookup per shard per cacheable
    /// query).
    pub cache_hits: u64,
    /// Shard-level result-cache lookups.
    pub cache_lookups: u64,
    /// Block IOs summed over every shard's indexes (cumulative snapshots,
    /// merged with the `IoStats: Sum` helper).
    pub io: IoStats,
    /// Bytes of index structures across all shards.
    pub index_bytes: u64,
    /// Wall seconds the engine spent building all shards (concurrent
    /// workers overlap, so this is less than the per-shard sum).
    pub build_secs: f64,
}

impl ServeReport {
    /// Overall queries per second (0 when nothing was served).
    pub fn qps(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.queries as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Cache hit rate over cacheable lookups (0 when none happened).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups > 0 {
            self.cache_hits as f64 / self.cache_lookups as f64
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve report: W = {}, {} queries in {:.3}s ({:.0} q/s)",
            self.workers,
            self.queries,
            self.elapsed_secs,
            self.qps()
        )?;
        writeln!(
            f,
            "  cache: {}/{} shard lookups hit ({:.1}%)",
            self.cache_hits,
            self.cache_lookups,
            100.0 * self.cache_hit_rate()
        )?;
        writeln!(
            f,
            "  io: {} block reads, {} writes | index: {:.1} MiB | build {:.2}s",
            self.io.reads,
            self.io.writes,
            self.index_bytes as f64 / (1 << 20) as f64,
            self.build_secs
        )?;
        for (route, rs) in Route::ALL.iter().zip(&self.routes) {
            if rs.queries > 0 {
                writeln!(
                    f,
                    "  {:>7}: {:>7} queries, {:.3} ms avg",
                    route.name(),
                    rs.queries,
                    1000.0 * rs.secs / rs.queries as f64
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let r = ServeReport {
            workers: 2,
            queries: 0,
            elapsed_secs: 0.0,
            routes: [RouteStats::default(); 5],
            cache_hits: 0,
            cache_lookups: 0,
            io: IoStats::default(),
            index_bytes: 0,
            build_secs: 0.0,
        };
        assert_eq!(r.qps(), 0.0);
        assert_eq!(r.cache_hit_rate(), 0.0);
        let text = r.to_string();
        assert!(text.contains("W = 2"));
    }

    #[test]
    fn display_lists_active_routes_only() {
        let mut routes = [RouteStats::default(); 5];
        routes[Route::Appx2.idx()] = RouteStats { queries: 10, secs: 0.01 };
        let r = ServeReport {
            workers: 4,
            queries: 10,
            elapsed_secs: 0.01,
            routes,
            cache_hits: 30,
            cache_lookups: 40,
            io: IoStats { reads: 5, ..Default::default() },
            index_bytes: 1 << 20,
            build_secs: 0.5,
        };
        let text = r.to_string();
        assert!(text.contains("APPX2"), "{text}");
        assert!(!text.contains("EXACT1"), "{text}");
        assert!((r.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!(r.qps() > 0.0);
    }
}
