//! `Send`-able query descriptors for the serving layer.

/// How much error a query is willing to accept, in the paper's `(ε, α)`
/// vocabulary: scores within an additive `ε·M` of the truth, and (when
/// `tight_ranks`) every returned rank individually `εM`-tight (`α = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Acceptable additive error as a fraction `ε` of the total mass `M`.
    /// The planner only routes to an approximate index whose *achieved* ε
    /// is at or below this budget.
    pub eps: f64,
    /// Require an `α = 1`-grade answer (APPX1's Lemma-2 guarantee, or
    /// APPX2+'s exact re-scoring); plain APPX2 (`α = 2 log r`) is then
    /// ineligible.
    pub tight_ranks: bool,
}

/// One serving-layer query: `top-k(t1, t2, sum)` plus the client's error
/// tolerance. Plain `Copy` data, so it crosses worker-thread channels and
/// task queues freely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeQuery {
    /// Query interval start.
    pub t1: f64,
    /// Query interval end.
    pub t2: f64,
    /// Number of objects to return.
    pub k: usize,
    /// `None` demands an exact answer; `Some` permits cost-based routing
    /// to an approximate index within the budget.
    pub tolerance: Option<Tolerance>,
}

impl ServeQuery {
    /// A query that must be answered exactly.
    pub fn exact(t1: f64, t2: f64, k: usize) -> Self {
        Self { t1, t2, k, tolerance: None }
    }

    /// A query accepting `(ε, 2 log r)`-grade answers.
    pub fn approx(t1: f64, t2: f64, k: usize, eps: f64) -> Self {
        Self { t1, t2, k, tolerance: Some(Tolerance { eps, tight_ranks: false }) }
    }

    /// A query accepting approximate scores but demanding `α = 1`-grade
    /// ranks (routes to APPX1 or APPX2+).
    pub fn approx_tight(t1: f64, t2: f64, k: usize, eps: f64) -> Self {
        Self { t1, t2, k, tolerance: Some(Tolerance { eps, tight_ranks: true }) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_tolerance() {
        assert_eq!(ServeQuery::exact(0.0, 1.0, 5).tolerance, None);
        let q = ServeQuery::approx(0.0, 1.0, 5, 0.01);
        assert_eq!(q.tolerance, Some(Tolerance { eps: 0.01, tight_ranks: false }));
        assert!(ServeQuery::approx_tight(0.0, 1.0, 5, 0.01).tolerance.unwrap().tight_ranks);
    }

    #[test]
    fn descriptors_are_send() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<ServeQuery>();
        assert_send::<Tolerance>();
    }
}
