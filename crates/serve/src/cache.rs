//! A small intrusive-list LRU cache for shard-local result caching.
//!
//! Each worker owns one [`LruCache`] mapping a *snapped* query key to the
//! shard's ranked answer (see the crate-private `shard` module);
//! `get`/`insert` are `O(1)`. Hit/miss counters live in the cache so
//! workers report them for free.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU capacity must be at least 1");
        Self {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                Some(&self.nodes[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) `key`, evicting the least-recently-used entry
    /// when full.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].key);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node { key: key.clone(), value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.nodes.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Keep only the entries for which `keep` returns true, preserving
    /// recency order. `O(len)` — the invalidation primitive a live ingest
    /// path uses when appends make a *subset* of cached answers stale
    /// (e.g. every snapped interval overlapping the appended region).
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) {
        // Collect victims first: unlink mutates the list we are walking.
        let mut victims = Vec::new();
        let mut idx = self.head;
        while idx != NIL {
            let node = &self.nodes[idx];
            if !keep(&node.key, &node.value) {
                victims.push(idx);
            }
            idx = node.next;
        }
        for idx in victims {
            self.unlink(idx);
            self.map.remove(&self.nodes[idx].key);
            self.free.push(idx);
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // a is now MRU
        c.insert("c", 3); // evicts b
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replace_updates_value_without_growth() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 9);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a"), Some(&9));
    }

    #[test]
    fn counts_hits_and_misses() {
        let mut c = LruCache::new(4);
        assert!(c.get(&"x").is_none());
        c.insert("x", 0);
        assert!(c.get(&"x").is_some());
        assert!(c.get(&"x").is_some());
        assert_eq!((c.hits(), c.misses()), (2, 1));
    }

    #[test]
    fn capacity_one_works() {
        let mut c = LruCache::new(1);
        c.insert(1u32, "one");
        c.insert(2u32, "two");
        assert_eq!(c.len(), 1);
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&2), Some(&"two"));
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let mut c = LruCache::new(3);
        c.insert(1u8, 1);
        c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
        c.insert(2u8, 2); // reusable after clear
        assert_eq!(c.get(&2), Some(&2));
    }

    #[test]
    fn retain_drops_only_matching_entries() {
        let mut c = LruCache::new(8);
        for i in 0..6u32 {
            c.insert(i, i * 10);
        }
        c.retain(|&k, _| k % 2 == 0);
        assert_eq!(c.len(), 3);
        for i in 0..6u32 {
            assert_eq!(c.get(&i).is_some(), i % 2 == 0, "key {i}");
        }
        // Freed slots are reused and eviction order stays sane.
        for i in 100..108u32 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 8);
        c.retain(|_, _| false);
        assert!(c.is_empty());
        c.insert(7u32, 7);
        assert_eq!(c.get(&7), Some(&7));
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.insert(i % 13, i);
            let probe = (i * 7) % 13;
            if let Some(&v) = c.get(&probe) {
                assert_eq!(v % 13, probe % 13);
            }
            assert!(c.len() <= 8);
        }
    }
}
