//! The shard worker: one thread owning one partition of the data and its
//! own single-threaded index structures.
//!
//! The storage layer's `Rc<Cell<_>>` IO counters make every index
//! `!Send` by design — so indexes are **built inside** the worker thread
//! and never cross it. Only plain data crosses the channels: the
//! [`ServeQuery`] descriptor going in, `(ObjectId, f64)` answer lists and
//! [`IoStats`] snapshots coming out.

use crate::cache::LruCache;
use crate::config::ServeConfig;
use crate::panic_message;
use crate::planner::{Route, RouteProfiles};
use crate::query::ServeQuery;
use chronorank_core::{
    AggKind, ApproxConfig, ApproxIndex, ApproxVariant, Breakpoints, Exact1, Exact3, IndexConfig,
    ObjectId, TemporalSet, TopKMethod,
};
use chronorank_storage::{Env, IoStats};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Duration;

/// A shard-local ranked answer (global ids) or an error message.
pub(crate) type ShardAnswer = Result<Vec<(ObjectId, f64)>, String>;

/// One routed query, as sent to every worker.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueryJob {
    pub qid: u64,
    pub query: ServeQuery,
    pub route: Route,
}

/// Coordinator → worker messages.
pub(crate) enum ToWorker {
    Query(QueryJob),
    /// Re-configure the emulated device latency (applies to every later
    /// query; channels are FIFO, so no acknowledgement is needed).
    SetLatency(Option<Duration>),
    Shutdown,
}

/// Worker → coordinator answer for one query.
pub(crate) struct WorkerReply {
    pub qid: u64,
    pub shard: usize,
    /// Shard-local top-k with **global** object ids, descending score.
    pub result: ShardAnswer,
    /// `None`: the route was not cacheable (or caching is off);
    /// `Some(hit)`: a cache lookup happened.
    pub cache: Option<bool>,
    /// Cumulative IO of all this shard's indexes (snapshot).
    pub io: IoStats,
}

/// Worker → coordinator build handshake.
pub(crate) struct BuildOutcome {
    pub shard: usize,
    pub result: Result<BuildInfo, String>,
}

/// Per-shard facts the coordinator folds into the planner and report.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BuildInfo {
    pub m: u64,
    pub n: u64,
    /// Profile of every built method, per route — the object-safe
    /// [`TopKMethod::profile`] surface the planner dispatches on.
    pub profiles: RouteProfiles,
    pub size_bytes: u64,
}

/// Key of the shard-local result cache: the **snapped** interval (as
/// breakpoint indexes), `k`, and the route. Valid precisely because the
/// cacheable routes ([`Route::cacheable`]) answer from the snapped
/// interval alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    b1: u32,
    b2: u32,
    k: u32,
    route: Route,
}

/// Everything a worker owns. Lives (and dies) on the worker thread.
struct ShardState {
    methods: [Option<Box<dyn TopKMethod>>; 5],
    breakpoints: Option<Breakpoints>,
    cache: Option<LruCache<CacheKey, Vec<(ObjectId, f64)>>>,
    /// Local dense id → global id.
    global_ids: Vec<ObjectId>,
    latency: Option<Duration>,
}

impl ShardState {
    fn build(
        set: &TemporalSet,
        global_ids: Vec<ObjectId>,
        cfg: &ServeConfig,
    ) -> chronorank_core::Result<(Self, BuildInfo)> {
        let store = cfg.store;
        let mut methods: [Option<Box<dyn TopKMethod>>; 5] = std::array::from_fn(|_| None);
        if cfg.methods.exact1 {
            methods[Route::Exact1.idx()] =
                Some(Box::new(Exact1::build(set, IndexConfig { store })?));
        }
        methods[Route::Exact3.idx()] = Some(Box::new(Exact3::build(set, IndexConfig { store })?));

        let approx = ApproxConfig { store, ..cfg.approx };
        let breakpoints = if cfg.methods.any_approx() {
            Some(match approx.eps {
                Some(eps) => Breakpoints::b2_with_eps(set, eps, approx.b2)?,
                None => Breakpoints::b2_with_count(set, approx.r, approx.b2)?,
            })
        } else {
            None
        };
        for (flag, route, variant) in [
            (cfg.methods.appx1, Route::Appx1, ApproxVariant::APPX1),
            (cfg.methods.appx2, Route::Appx2, ApproxVariant::APPX2),
            (cfg.methods.appx2_plus, Route::Appx2Plus, ApproxVariant::APPX2_PLUS),
        ] {
            if flag {
                let bp = breakpoints.clone().expect("breakpoints exist when any approx is built");
                let idx =
                    ApproxIndex::build_with_breakpoints(Env::mem(store), set, variant, approx, bp)?;
                methods[route.idx()] = Some(Box::new(idx));
            }
        }

        let size_bytes = methods.iter().flatten().map(|m| m.size_bytes()).sum();
        let info = BuildInfo {
            m: set.num_objects() as u64,
            n: set.num_segments(),
            profiles: std::array::from_fn(|i| methods[i].as_ref().map(|m| m.profile())),
            size_bytes,
        };
        let cache = (cfg.cache_capacity > 0).then(|| LruCache::new(cfg.cache_capacity));
        let state =
            Self { methods, breakpoints, cache, global_ids, latency: cfg.simulated_read_latency };
        Ok((state, info))
    }

    /// Answer one routed query, consulting the result cache when the route
    /// permits. Returns the answer and `Some(hit)` if a lookup happened.
    fn answer(&mut self, job: &QueryJob) -> (ShardAnswer, Option<bool>) {
        let q = job.query;
        let key = match (&self.breakpoints, &self.cache) {
            (Some(bp), Some(_)) if job.route.cacheable() => Some(CacheKey {
                b1: bp.snap_idx(q.t1) as u32,
                b2: bp.snap_idx(q.t2) as u32,
                k: q.k as u32,
                route: job.route,
            }),
            _ => None,
        };
        if let Some(key) = key {
            if let Some(hit) = self.cache.as_mut().expect("key implies cache").get(&key) {
                return (Ok(hit.clone()), Some(true));
            }
            let res = self.probe(job.route, q);
            if let Ok(entries) = &res {
                self.cache.as_mut().expect("key implies cache").insert(key, entries.clone());
            }
            (res, Some(false))
        } else {
            (self.probe(job.route, q), None)
        }
    }

    /// Run the routed index probe and translate ids to the global space.
    fn probe(&self, route: Route, q: ServeQuery) -> ShardAnswer {
        let method = self.methods[route.idx()]
            .as_ref()
            .ok_or_else(|| format!("route {} not built on this shard", route.name()))?;
        let before = method.io_stats();
        let top = method.top_k(q.t1, q.t2, q.k, AggKind::Sum).map_err(|e| e.to_string())?;
        if let Some(latency) = self.latency {
            let reads = method.io_stats().since(before).reads;
            if reads > 0 {
                std::thread::sleep(latency.saturating_mul(reads.min(u32::MAX as u64) as u32));
            }
        }
        Ok(top.entries().iter().map(|&(id, s)| (self.global_ids[id as usize], s)).collect())
    }

    /// Cumulative IO across all of this shard's indexes.
    fn io_total(&self) -> IoStats {
        self.methods.iter().flatten().map(|m| m.io_stats()).sum()
    }
}

/// Thread body of one worker: build, handshake, then serve until shutdown.
///
/// Panic-safe by contract with the coordinator: the build sender is
/// dropped right after the handshake and query-time panics are converted
/// into `Err` replies, so a buggy index can never leave the coordinator
/// blocked on a reply that will not come.
pub(crate) fn worker_main(
    shard: usize,
    set: TemporalSet,
    global_ids: Vec<ObjectId>,
    cfg: ServeConfig,
    rx: Receiver<ToWorker>,
    build_tx: Sender<BuildOutcome>,
    reply_tx: Sender<WorkerReply>,
) {
    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ShardState::build(&set, global_ids, &cfg)
    }));
    let mut state = match built {
        Ok(Ok((state, info))) => {
            let alive = build_tx.send(BuildOutcome { shard, result: Ok(info) }).is_ok();
            // Release the handshake channel: the coordinator detects a
            // dead sibling worker by its sender dropping, which only works
            // if healthy workers do not hold clones forever.
            drop(build_tx);
            if !alive {
                return;
            }
            state
        }
        Ok(Err(e)) => {
            build_tx.send(BuildOutcome { shard, result: Err(e.to_string()) }).ok();
            return;
        }
        Err(payload) => {
            let message = format!("build panicked: {}", panic_message(&*payload));
            build_tx.send(BuildOutcome { shard, result: Err(message) }).ok();
            return;
        }
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Query(job) => {
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| state.answer(&job)));
                let (result, cache) = outcome.unwrap_or_else(|payload| {
                    (Err(format!("query panicked: {}", panic_message(&*payload))), None)
                });
                let reply =
                    WorkerReply { qid: job.qid, shard, result, cache, io: state.io_total() };
                if reply_tx.send(reply).is_err() {
                    return;
                }
            }
            ToWorker::SetLatency(latency) => state.latency = latency,
            ToWorker::Shutdown => return,
        }
    }
}
