//! Shared-snapshot shards: one partition's indexes, built once, queried by
//! any number of worker threads.
//!
//! Since the storage layer became `Send + Sync` (atomic IO counters, a
//! mutex-guarded buffer pool), a fully built index is an immutable
//! snapshot. A [`Shard`] bundles one partition's built methods behind an
//! `Arc`: the engine's worker pool scatters every query to all shards and
//! any free worker answers any shard's part — true parallel
//! scatter-gather over shared state, with no per-worker index duplication.
//!
//! The only mutable pieces are the shard-local result cache (a small LRU
//! behind its own [`Mutex`]; the critical section is a key lookup or an
//! insert, never an index probe) and the emulated-device latency knob (a
//! relaxed atomic read per probe).

use crate::cache::LruCache;
use crate::config::ServeConfig;
use crate::planner::{MethodSet, Route, RouteProfiles};
use crate::query::ServeQuery;
use chronorank_core::{
    AggKind, ApproxConfig, ApproxIndex, ApproxVariant, Breakpoints, Exact1, Exact3, IndexConfig,
    ObjectId, SharedMethod, TemporalSet,
};
use chronorank_storage::{Env, IoStats, StoreConfig};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A shard-local ranked answer (global ids) or an error message.
pub(crate) type ShardAnswer = Result<Vec<(ObjectId, f64)>, String>;

/// The shard-local result cache under its lock.
type ResultCache = Mutex<LruCache<CacheKey, Vec<(ObjectId, f64)>>>;

/// Per-shard facts the engine folds into the planner and report.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardFacts {
    pub m: u64,
    pub n: u64,
    /// Profile of every built method, per route — the object-safe
    /// [`chronorank_core::TopKMethod::profile`] surface the planner
    /// dispatches on.
    pub profiles: RouteProfiles,
    pub size_bytes: u64,
    /// This partition's time domain (the engine merges all shards').
    pub t_min: f64,
    pub t_max: f64,
    /// Inputs the planner needs back when an engine is rebuilt over
    /// already-built shards ([`crate::ServeEngine::from_shards`]).
    pub block: u64,
    pub r: u64,
}

/// Key of the shard-local result cache: the **snapped** interval (as
/// breakpoint indexes), `k`, and the route. Valid precisely because the
/// cacheable routes ([`Route::cacheable`]) answer from the snapped
/// interval alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    b1: u32,
    b2: u32,
    k: u32,
    route: Route,
}

/// One snapshot's built route methods: the dyn-dispatch array the planner
/// routes through, plus the typed EXACT1/EXACT3 handles a persistence
/// layer captures page-for-page (the array holds `Arc` clones of the same
/// indexes — nothing is built twice).
pub struct BuiltRoutes {
    /// Per-[`Route`] methods, `None` where disabled.
    pub methods: [Option<SharedMethod>; 5],
    /// The one breakpoint set shared by every enabled APPX variant.
    pub breakpoints: Option<Breakpoints>,
    /// Concrete EXACT1 handle (present iff the route is enabled).
    pub exact1: Option<Arc<Exact1>>,
    /// Concrete EXACT3 handle (always built — the exact fallback route).
    pub exact3: Arc<Exact3>,
}

/// Build the per-route method array one serving snapshot needs: optional
/// EXACT1, mandatory EXACT3, and the enabled APPX variants sharing one
/// breakpoint set. The single construction path for both serve shards and
/// live generations — the two layers must never diverge in what a route
/// is backed by.
pub fn build_route_methods(
    set: &TemporalSet,
    methods: MethodSet,
    approx: ApproxConfig,
    store: StoreConfig,
) -> chronorank_core::Result<([Option<SharedMethod>; 5], Option<Breakpoints>)> {
    let built = build_route_methods_with_handles(set, methods, approx, store)?;
    Ok((built.methods, built.breakpoints))
}

/// [`build_route_methods`], keeping the concrete EXACT1/EXACT3 handles —
/// what a generation image needs to capture the trees page-for-page.
pub fn build_route_methods_with_handles(
    set: &TemporalSet,
    methods: MethodSet,
    approx: ApproxConfig,
    store: StoreConfig,
) -> chronorank_core::Result<BuiltRoutes> {
    let exact1 = if methods.exact1 {
        Some(Arc::new(Exact1::build(set, IndexConfig { store })?))
    } else {
        None
    };
    let exact3 = Arc::new(Exact3::build(set, IndexConfig { store })?);
    let breakpoints = if methods.any_approx() {
        Some(match approx.eps {
            Some(eps) => Breakpoints::b2_with_eps(set, eps, approx.b2)?,
            None => Breakpoints::b2_with_count(set, approx.r, approx.b2)?,
        })
    } else {
        None
    };
    assemble_route_methods(set, methods, approx, store, exact1, exact3, breakpoints)
}

/// Assemble the route array from pre-built exact handles plus a breakpoint
/// set, building only the APPX variants (deterministic given the
/// breakpoints). This is the reopen path: a restart extracts EXACT1/EXACT3
/// and the breakpoints from a generation image and rebuilds nothing else.
pub fn assemble_route_methods(
    set: &TemporalSet,
    methods: MethodSet,
    approx: ApproxConfig,
    store: StoreConfig,
    exact1: Option<Arc<Exact1>>,
    exact3: Arc<Exact3>,
    breakpoints: Option<Breakpoints>,
) -> chronorank_core::Result<BuiltRoutes> {
    let mut built: [Option<SharedMethod>; 5] = std::array::from_fn(|_| None);
    if let Some(e1) = &exact1 {
        built[Route::Exact1.idx()] = Some(Box::new(Arc::clone(e1)));
    }
    built[Route::Exact3.idx()] = Some(Box::new(Arc::clone(&exact3)));
    let approx = ApproxConfig { store, ..approx };
    for (flag, route, variant) in [
        (methods.appx1, Route::Appx1, ApproxVariant::APPX1),
        (methods.appx2, Route::Appx2, ApproxVariant::APPX2),
        (methods.appx2_plus, Route::Appx2Plus, ApproxVariant::APPX2_PLUS),
    ] {
        if flag {
            let bp = breakpoints.clone().expect("breakpoints exist when any approx is built");
            let idx =
                ApproxIndex::build_with_breakpoints(Env::mem(store), set, variant, approx, bp)?;
            built[route.idx()] = Some(Box::new(idx));
        }
    }
    Ok(BuiltRoutes { methods: built, breakpoints, exact1, exact3 })
}

/// One partition's built, immutable index snapshot (see module docs).
/// Published as `Arc<Shard>`; every method takes `&self`.
pub struct Shard {
    methods: [Option<SharedMethod>; 5],
    breakpoints: Option<Breakpoints>,
    cache: Option<ResultCache>,
    /// Local dense id → global id.
    global_ids: Vec<ObjectId>,
    /// Emulated device latency per block read, in µs (`0` = none).
    latency_us: AtomicU64,
    facts: ShardFacts,
}

impl Shard {
    /// Build one partition's indexes per `cfg`. Runs wherever the caller
    /// wants (the engine builds all partitions concurrently); the result
    /// is immediately shareable.
    pub(crate) fn build(
        set: &TemporalSet,
        global_ids: Vec<ObjectId>,
        cfg: &ServeConfig,
    ) -> chronorank_core::Result<Self> {
        let store = cfg.store;
        let (methods, breakpoints) = build_route_methods(set, cfg.methods, cfg.approx, store)?;
        let size_bytes = methods.iter().flatten().map(|m| m.size_bytes()).sum();
        let facts = ShardFacts {
            m: set.num_objects() as u64,
            n: set.num_segments(),
            profiles: std::array::from_fn(|i| methods[i].as_ref().map(|m| m.profile())),
            size_bytes,
            t_min: set.t_min(),
            t_max: set.t_max(),
            block: store.block_size as u64,
            r: cfg.approx.r as u64,
        };
        let cache = (cfg.cache_capacity > 0).then(|| Mutex::new(LruCache::new(cfg.cache_capacity)));
        let latency_us =
            AtomicU64::new(cfg.simulated_read_latency.map_or(0, |d| d.as_micros() as u64));
        Ok(Self { methods, breakpoints, cache, global_ids, latency_us, facts })
    }

    pub(crate) fn facts(&self) -> ShardFacts {
        self.facts
    }

    /// Re-configure the emulated per-block-read device latency. Probes
    /// read the knob atomically, so this takes effect immediately, even
    /// for queries already queued.
    pub(crate) fn set_latency(&self, latency: Option<Duration>) {
        self.latency_us.store(latency.map_or(0, |d| d.as_micros() as u64), Ordering::Relaxed);
    }

    /// Cumulative IO across all of this shard's indexes.
    pub(crate) fn io_total(&self) -> IoStats {
        self.methods.iter().flatten().map(|m| m.io_stats()).sum()
    }

    /// `(hits, lookups)` of the shard-local result cache.
    pub(crate) fn cache_counters(&self) -> (u64, u64) {
        match &self.cache {
            Some(cache) => {
                let cache = cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                (cache.hits(), cache.hits() + cache.misses())
            }
            None => (0, 0),
        }
    }

    /// Answer one routed query, consulting the result cache when the route
    /// permits. `&self`: any worker thread may answer for any shard.
    /// The second return is `Some(hit)` when the result cache was
    /// consulted (`None` = the route bypassed it) — what the engine folds
    /// into a query-level [`chronorank_obs::CacheOutcome`].
    pub(crate) fn answer(&self, q: ServeQuery, route: Route) -> (ShardAnswer, Option<bool>) {
        let key = match (&self.breakpoints, &self.cache) {
            (Some(bp), Some(_)) if route.cacheable() => Some(CacheKey {
                b1: bp.snap_idx(q.t1) as u32,
                b2: bp.snap_idx(q.t2) as u32,
                k: q.k as u32,
                route,
            }),
            _ => None,
        };
        let Some(key) = key else { return (self.probe(route, q), None) };
        let cache = self.cache.as_ref().expect("key implies cache");
        if let Some(hit) =
            cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(&key).cloned()
        {
            return (Ok(hit), Some(true));
        }
        // The index probe runs outside the cache lock; two workers racing
        // on the same cold key both probe and the second insert wins —
        // identical answers either way (cached == uncached is bit-exact).
        let res = self.probe(route, q);
        if let Ok(entries) = &res {
            cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(key, entries.clone());
        }
        (res, Some(false))
    }

    /// Answer one shard's view of an admitted batch window: queries that
    /// collapse onto the same probe — same route, `k`, and snapped
    /// `(B(t1), B(t2))` pair for the snap-keyed routes, same raw interval
    /// for the rest — are answered by **one** [`Shard::answer`] call whose
    /// result is cloned to every group member. The result cache therefore
    /// sees exactly one lookup per group per batch (the probe-dedup
    /// regression test pins this). Bit-identical to answering every query
    /// alone: snap-keyed routes ([`Route::cacheable`]) answer from the
    /// snapped interval alone, and raw groups share the full probe input.
    pub(crate) fn answer_batch(
        &self,
        window: &[(ServeQuery, Route)],
    ) -> Vec<(ShardAnswer, Option<bool>)> {
        #[derive(PartialEq, Eq, Hash)]
        enum ProbeKey {
            Snapped { b1: u32, b2: u32, k: u32, route: Route },
            Raw { t1: u64, t2: u64, k: u32, route: Route },
        }
        let key_of = |q: &ServeQuery, route: Route| match &self.breakpoints {
            Some(bp) if route.cacheable() => ProbeKey::Snapped {
                b1: bp.snap_idx(q.t1) as u32,
                b2: bp.snap_idx(q.t2) as u32,
                k: q.k as u32,
                route,
            },
            _ => ProbeKey::Raw { t1: q.t1.to_bits(), t2: q.t2.to_bits(), k: q.k as u32, route },
        };
        let mut first_of: HashMap<ProbeKey, usize> = HashMap::with_capacity(window.len());
        let mut out: Vec<Option<(ShardAnswer, Option<bool>)>> = vec![None; window.len()];
        for (i, (q, route)) in window.iter().enumerate() {
            match first_of.entry(key_of(q, *route)) {
                Entry::Occupied(e) => out[i] = out[*e.get()].clone(),
                Entry::Vacant(e) => {
                    e.insert(i);
                    out[i] = Some(self.answer(*q, *route));
                }
            }
        }
        out.into_iter().map(|o| o.expect("every slot answered or copied")).collect()
    }

    /// Run the routed index probe and translate ids to the global space.
    fn probe(&self, route: Route, q: ServeQuery) -> ShardAnswer {
        let method = self.methods[route.idx()]
            .as_ref()
            .ok_or_else(|| format!("route {} not built on this shard", route.name()))?;
        let latency_us = self.latency_us.load(Ordering::Relaxed);
        let before = (latency_us > 0).then(chronorank_storage::IoCounter::thread_reads);
        let top = method.top_k(q.t1, q.t2, q.k, AggKind::Sum).map_err(|e| e.to_string())?;
        if let Some(before) = before {
            // Emulated device: sleep once per block read THIS probe did.
            // The thread-local tally attributes reads exactly to the
            // calling worker, so concurrent probes on one shard never
            // smear into each other's sleep time — the emulation is
            // deterministic at any pool size.
            let reads = chronorank_storage::IoCounter::thread_reads() - before;
            if reads > 0 {
                std::thread::sleep(
                    Duration::from_micros(latency_us)
                        .saturating_mul(reads.min(u32::MAX as u64) as u32),
                );
            }
        }
        Ok(top.entries().iter().map(|&(id, s)| (self.global_ids[id as usize], s)).collect())
    }
}
