//! Cost-based query routing.
//!
//! The planner is the paper's Figure-3 cost table made operational: for
//! each query it instantiates [`chronorank_core::cost_model`] with the
//! shard's parameters and the query's `(t1, t2, k)`, then picks the
//! cheapest built method whose [`MethodProfile`] (reported by every shard
//! through the object-safe [`chronorank_core::TopKMethod`] trait and
//! merged worst-case across shards) satisfies the query's
//! [`crate::Tolerance`]:
//!
//! * no tolerance → exact: EXACT1 (`log_B N + Σ qᵢ/B`, wins on short
//!   intervals where few segments overlap) vs EXACT3 (`log_B N + m/B`,
//!   wins everywhere else — the paper's default exact choice);
//! * tolerance with `ε`-budget ≥ the shards' achieved ε → approximate:
//!   APPX1 (`k/B + log_B r`, `α = 1`), APPX2 (`k log r`, `α = 2 log r`),
//!   APPX2+ (`k log r log_B n`, re-scored) — filtered by each profile's
//!   `tight_ranks`/`max_k`, then cheapest-first;
//! * budget unsatisfiable (ε too small, or `k > kmax`) → exact fallback.

use crate::query::ServeQuery;
use chronorank_core::cost_model::{query_cost, CostParams};
use chronorank_core::MethodProfile;

/// The freshness/staleness dimension a live (append-receiving) deployment
/// feeds into routing: the index generations the shards currently serve
/// were built over `built_mass`, while right-edge appends have grown the
/// live mass to `live_mass ≥ built_mass`. The planner re-validates every
/// approximate profile against the live mass
/// ([`chronorank_core::MethodProfile::revalidate`]) before admitting it —
/// a frozen generation's *absolute* error bound `ε·M_built` is a smaller
/// fraction of a grown mass, so queries keep routing to approximate
/// indexes (and their caches) for exactly as long as the snapped ε-bound
/// still holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Freshness {
    /// Total mass `M` the serving generations were built over.
    pub built_mass: f64,
    /// Current total mass, appends included.
    pub live_mass: f64,
}

/// The methods the engine can host, in the paper's presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Route {
    /// EXACT1 — B+-tree over all segments, range scan (§2).
    Exact1,
    /// EXACT3 — interval tree, two stabbing queries (§2).
    Exact3,
    /// APPX1 — BREAKPOINTS2 + QUERY1, `(ε, 1)` (§3.2).
    Appx1,
    /// APPX2 — BREAKPOINTS2 + QUERY2, `(ε, 2 log r)` (§3.2).
    Appx2,
    /// APPX2+ — APPX2 + exact re-scoring (§3.3).
    Appx2Plus,
}

impl Route {
    /// All routes, display order.
    pub const ALL: [Route; 5] =
        [Route::Exact1, Route::Exact3, Route::Appx1, Route::Appx2, Route::Appx2Plus];

    /// Paper name of the routed method.
    pub fn name(self) -> &'static str {
        match self {
            Route::Exact1 => "EXACT1",
            Route::Exact3 => "EXACT3",
            Route::Appx1 => "APPX1",
            Route::Appx2 => "APPX2",
            Route::Appx2Plus => "APPX2+",
        }
    }

    /// True for the exact methods.
    pub fn is_exact(self) -> bool {
        matches!(self, Route::Exact1 | Route::Exact3)
    }

    /// Whether answers on this route are fully determined by the *snapped*
    /// breakpoint pair — the condition for result caching. True for APPX1
    /// and APPX2 (both snap `[t1, t2]` to `[B(t1), B(t2)]` before touching
    /// any list). False for exact routes (answers depend on the raw
    /// interval) and for APPX2+ (its re-scoring integrates over the raw
    /// `[t1, t2]`).
    pub fn cacheable(self) -> bool {
        matches!(self, Route::Appx1 | Route::Appx2)
    }

    /// Dense index into per-route tables such as
    /// [`crate::ServeReport::routes`] and [`RouteProfiles`]
    /// ([`Route::ALL`] order).
    pub fn idx(self) -> usize {
        match self {
            Route::Exact1 => 0,
            Route::Exact3 => 1,
            Route::Appx1 => 2,
            Route::Appx2 => 3,
            Route::Appx2Plus => 4,
        }
    }
}

/// Which methods each shard builds (and the planner may route to).
/// EXACT3 is mandatory: it is the engine's correctness anchor and the
/// fallback when a tolerance cannot be honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodSet {
    /// Build EXACT1 (enables short-interval exact routing).
    pub exact1: bool,
    /// Build APPX1 (`(ε,1)`; `Θ(r² kmax/B)` space — off by default).
    pub appx1: bool,
    /// Build APPX2 (`(ε, 2 log r)`; the cheap approximate workhorse).
    pub appx2: bool,
    /// Build APPX2+ (APPX2 + EXACT2 re-scorer; near-exact in practice).
    pub appx2_plus: bool,
}

impl Default for MethodSet {
    fn default() -> Self {
        Self { exact1: true, appx1: false, appx2: true, appx2_plus: true }
    }
}

impl MethodSet {
    /// True when `route` is part of the set (EXACT3 always is).
    pub fn contains(&self, route: Route) -> bool {
        match route {
            Route::Exact1 => self.exact1,
            Route::Exact3 => true,
            Route::Appx1 => self.appx1,
            Route::Appx2 => self.appx2,
            Route::Appx2Plus => self.appx2_plus,
        }
    }

    /// True when any approximate method is enabled.
    pub fn any_approx(&self) -> bool {
        self.appx1 || self.appx2 || self.appx2_plus
    }
}

/// One [`MethodProfile`] per route ([`Route::ALL`] order), `None` where the
/// method is not built. Each shard reports its built methods' profiles
/// (via [`chronorank_core::TopKMethod::profile`]); the engine merges them
/// worst-case with [`merge_profiles`] so one plan is valid everywhere.
pub type RouteProfiles = [Option<MethodProfile>; 5];

/// Worst-case merge of per-shard profiles: a route is available only when
/// every shard built it; `ε` is the largest achieved, `tight_ranks` must
/// hold on every shard, `max_k` is the smallest cap.
pub fn merge_profiles(shards: &[RouteProfiles]) -> RouteProfiles {
    let mut merged: RouteProfiles = [None; 5];
    for (i, slot) in merged.iter_mut().enumerate() {
        let mut acc: Option<MethodProfile> = None;
        for shard in shards {
            let Some(p) = shard[i] else {
                acc = None;
                break;
            };
            acc = Some(match acc {
                None => p,
                Some(a) => MethodProfile {
                    eps: match (a.eps, p.eps) {
                        (Some(x), Some(y)) => Some(x.max(y)),
                        (None, None) => None,
                        // Exact and approximate mixed on one route cannot
                        // happen; degrade to the approximate view.
                        (x, y) => x.or(y),
                    },
                    tight_ranks: a.tight_ranks && p.tight_ranks,
                    max_k: match (a.max_k, p.max_k) {
                        (Some(x), Some(y)) => Some(x.min(y)),
                        (x, y) => x.or(y),
                    },
                },
            });
        }
        *slot = acc;
    }
    merged
}

/// Per-shard parameters the planner instantiates the cost model with
/// (worst-case across shards, so one plan is valid engine-wide).
#[derive(Debug, Clone, Copy)]
pub struct PlannerParams {
    /// Objects in the largest shard.
    pub shard_m: u64,
    /// Segments in the largest shard.
    pub shard_n: u64,
    /// Block size in bytes.
    pub block: u64,
    /// Breakpoints per shard (`r`).
    pub r: u64,
    /// Global time-domain span `T` (for the overlap-fraction estimate).
    pub span: f64,
}

/// The engine-side router (one per engine, shared by all shards).
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    params: PlannerParams,
    profiles: RouteProfiles,
}

impl Planner {
    /// A planner for shards with the given parameters and (worst-case
    /// merged) built-method profiles. EXACT3 must be present — it is the
    /// unconditional fallback.
    pub fn new(params: PlannerParams, profiles: RouteProfiles) -> Self {
        Self { params, profiles }
    }

    /// The parameters in use.
    pub fn params(&self) -> PlannerParams {
        self.params
    }

    /// The merged profile dispatched through for `route`, if built.
    pub fn profile(&self, route: Route) -> Option<MethodProfile> {
        self.profiles[route.idx()]
    }

    /// Instantiate the cost model for one query.
    fn costs(&self, q: &ServeQuery) -> chronorank_core::cost_model::QueryCost {
        let p = self.params;
        // Fraction of all segments a range scan would touch: the interval's
        // share of the domain (uniform-density estimate, clamped).
        let overlap = if p.span > 0.0 { ((q.t2 - q.t1) / p.span).clamp(0.0, 1.0) } else { 1.0 };
        let kmax = Route::ALL
            .iter()
            .filter_map(|r| self.profiles[r.idx()].and_then(|p| p.max_k))
            .max()
            .unwrap_or(1);
        query_cost(&CostParams {
            m: p.shard_m.max(1),
            n_total: p.shard_n.max(1),
            n_avg: (p.shard_n / p.shard_m.max(1)).max(1),
            block: p.block.max(512),
            r: p.r.max(2),
            kmax: kmax as u64,
            k: q.k as u64,
            overlap_frac: overlap,
        })
    }

    /// Route one query: the cheapest built method whose profile satisfies
    /// the query's tolerance (exact fallback otherwise).
    pub fn route(&self, q: &ServeQuery) -> Route {
        self.route_with_freshness(q, None)
    }

    /// [`Planner::route`] with the live deployment's freshness dimension:
    /// every approximate profile is restated against the live mass before
    /// the ε-budget check (see [`Freshness`]). `None` reproduces the
    /// static behaviour exactly.
    pub fn route_with_freshness(&self, q: &ServeQuery, fresh: Option<Freshness>) -> Route {
        self.select(q, self.costs(q), fresh)
    }

    /// Route every query of one admitted batch window.
    ///
    /// Queries that collapse onto the same probe — identical raw interval
    /// for the raw-keyed routes, identical snapped breakpoint pair for the
    /// grid-keyed ones — share that probe at execution time, so their
    /// per-query costs are amortized ([`chronorank_core::cost_model::QueryCost::amortized`]) before
    /// selection. The amortization factors are uniform within each
    /// comparison class, so the chosen route for every query is provably
    /// identical to its solo [`Planner::route_with_freshness`] route (the
    /// batch agreement suites pin this); what changes is the *cost* the
    /// planner attributes to the plan, which keeps downstream accounting
    /// honest about shared probes. The snapped grouping is estimated on
    /// the planner's uniform `r`-cell grid over the domain span — the
    /// shards' real breakpoints refine it, never coarsen it.
    pub fn route_batch(&self, qs: &[ServeQuery], fresh: Option<Freshness>) -> Vec<Route> {
        use std::collections::HashMap;
        // Probe-sharing keys: (interval key, k, tolerance identity).
        type Key = (u64, u64, usize, Option<(u64, bool)>);
        let tol_key = |q: &ServeQuery| q.tolerance.map(|t| (t.eps.to_bits(), t.tight_ranks));
        let p = self.params;
        let cell = if p.span > 0.0 { p.span / p.r.max(2) as f64 } else { 0.0 };
        let snap = |t: f64| {
            if cell > 0.0 {
                (t / cell).floor().clamp(-1.0, p.r as f64 + 1.0) as i64 as u64
            } else {
                t.to_bits()
            }
        };
        let mut raw: HashMap<Key, usize> = HashMap::new();
        let mut grid: HashMap<Key, usize> = HashMap::new();
        for q in qs {
            *raw.entry((q.t1.to_bits(), q.t2.to_bits(), q.k, tol_key(q))).or_insert(0) += 1;
            *grid.entry((snap(q.t1), snap(q.t2), q.k, tol_key(q))).or_insert(0) += 1;
        }
        qs.iter()
            .map(|q| {
                let exact_share = raw[&(q.t1.to_bits(), q.t2.to_bits(), q.k, tol_key(q))];
                let snap_share = grid[&(snap(q.t1), snap(q.t2), q.k, tol_key(q))];
                self.select(q, self.costs(q).amortized(exact_share, snap_share), fresh)
            })
            .collect()
    }

    /// Shared selection logic: cheapest admissible approximate route under
    /// the (possibly amortized) costs, exact fallback otherwise.
    fn select(
        &self,
        q: &ServeQuery,
        c: chronorank_core::cost_model::QueryCost,
        fresh: Option<Freshness>,
    ) -> Route {
        if let Some(tol) = q.tolerance {
            let mut best: Option<(Route, f64)> = None;
            for (route, cost) in
                [(Route::Appx1, c.appx1), (Route::Appx2, c.appx2), (Route::Appx2Plus, c.appx2_plus)]
            {
                let Some(mut profile) = self.profiles[route.idx()] else { continue };
                if let Some(f) = fresh {
                    profile = profile.revalidate(f.built_mass, f.live_mass);
                }
                let eps_ok = matches!(profile.eps, Some(e) if e <= tol.eps);
                let k_ok = profile.max_k.is_none_or(|kmax| q.k <= kmax);
                if !eps_ok || !k_ok || (tol.tight_ranks && !profile.tight_ranks) {
                    continue;
                }
                if best.is_none_or(|(_, b)| cost < b) {
                    best = Some((route, cost));
                }
            }
            if let Some((route, _)) = best {
                return route;
            }
        }
        if self.profiles[Route::Exact1.idx()].is_some() && c.exact1 < c.exact3 {
            Route::Exact1
        } else {
            Route::Exact3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(eps: f64, tight: bool, kmax: usize) -> Option<MethodProfile> {
        Some(MethodProfile { eps: Some(eps), tight_ranks: tight, max_k: Some(kmax) })
    }

    /// EXACT1 + EXACT3 + APPX2 + APPX2+ (the default `MethodSet`) at ε = 1%.
    fn profiles() -> RouteProfiles {
        let mut p: RouteProfiles = [None; 5];
        p[Route::Exact1.idx()] = Some(MethodProfile::EXACT);
        p[Route::Exact3.idx()] = Some(MethodProfile::EXACT);
        p[Route::Appx2.idx()] = approx(0.01, false, 64);
        p[Route::Appx2Plus.idx()] = approx(0.01, true, 64);
        p
    }

    fn params() -> PlannerParams {
        PlannerParams { shard_m: 2_000, shard_n: 200_000, block: 4096, r: 64, span: 1000.0 }
    }

    #[test]
    fn exact_queries_route_by_interval_length() {
        let p = Planner::new(params(), profiles());
        // A hairline interval overlaps almost nothing: EXACT1's range scan
        // beats EXACT3's unconditional m/B output term.
        assert_eq!(p.route(&ServeQuery::exact(10.0, 10.01, 20)), Route::Exact1);
        // A 30%-of-domain interval must scan ~60k segments: EXACT3 wins.
        assert_eq!(p.route(&ServeQuery::exact(100.0, 400.0, 20)), Route::Exact3);
    }

    #[test]
    fn without_exact1_everything_exact_goes_to_exact3() {
        let mut pr = profiles();
        pr[Route::Exact1.idx()] = None;
        let p = Planner::new(params(), pr);
        assert_eq!(p.route(&ServeQuery::exact(10.0, 10.01, 20)), Route::Exact3);
    }

    #[test]
    fn tolerance_routes_to_cheapest_admissible_approx() {
        let p = Planner::new(params(), profiles());
        // Loose ranks: APPX2 is the cheapest built approximate method.
        assert_eq!(p.route(&ServeQuery::approx(100.0, 400.0, 20, 0.05)), Route::Appx2);
        // Tight ranks with APPX1 not built: APPX2+ (re-scored).
        assert_eq!(p.route(&ServeQuery::approx_tight(100.0, 400.0, 20, 0.05)), Route::Appx2Plus);
        // Tight ranks with APPX1 built: APPX1 is cheaper than APPX2+.
        let mut pr = profiles();
        pr[Route::Appx1.idx()] = approx(0.01, true, 64);
        let with1 = Planner::new(params(), pr);
        assert_eq!(with1.route(&ServeQuery::approx_tight(100.0, 400.0, 20, 0.05)), Route::Appx1);
    }

    #[test]
    fn unsatisfiable_budgets_fall_back_to_exact() {
        let p = Planner::new(params(), profiles());
        // ε budget below the achieved ε of the built breakpoints.
        let q = ServeQuery::approx(100.0, 400.0, 20, 0.001);
        assert!(p.route(&q).is_exact());
        // k beyond kmax.
        let q = ServeQuery::approx(100.0, 400.0, 200, 0.05);
        assert!(p.route(&q).is_exact());
        // No approximate index built at all.
        let mut pr = profiles();
        pr[Route::Appx2.idx()] = None;
        pr[Route::Appx2Plus.idx()] = None;
        let none = Planner::new(params(), pr);
        assert!(none.route(&ServeQuery::approx(100.0, 400.0, 20, 0.05)).is_exact());
    }

    #[test]
    fn freshness_revalidates_eps_budgets() {
        let p = Planner::new(params(), profiles());
        // Budget 0.006 is below the built ε = 0.01 → exact fallback when
        // the data is static…
        let q = ServeQuery::approx(100.0, 400.0, 20, 0.006);
        assert!(p.route(&q).is_exact());
        // …but once appends have doubled the mass, the frozen generation's
        // absolute bound is ε_eff = 0.005 of the live mass: admissible.
        let fresh = Freshness { built_mass: 100.0, live_mass: 200.0 };
        assert_eq!(p.route_with_freshness(&q, Some(fresh)), Route::Appx2);
        // No growth → identical to the static route.
        let same = Freshness { built_mass: 100.0, live_mass: 100.0 };
        assert!(p.route_with_freshness(&q, Some(same)).is_exact());
        // Exact queries are unaffected by freshness.
        let e = ServeQuery::exact(100.0, 400.0, 20);
        assert_eq!(p.route_with_freshness(&e, Some(fresh)), p.route(&e));
    }

    #[test]
    fn batch_routing_matches_solo_routing() {
        let p = Planner::new(params(), profiles());
        let fresh = Freshness { built_mass: 100.0, live_mass: 150.0 };
        // A mixed window: duplicated exact probes, snapped-together approx
        // probes, a tight-ranks query, and an unsatisfiable budget.
        let qs = vec![
            ServeQuery::exact(10.0, 10.01, 20),
            ServeQuery::exact(10.0, 10.01, 20),
            ServeQuery::exact(100.0, 400.0, 20),
            ServeQuery::approx(100.0, 400.0, 20, 0.05),
            ServeQuery::approx(100.1, 400.2, 20, 0.05),
            ServeQuery::approx_tight(100.0, 400.0, 20, 0.05),
            ServeQuery::approx(100.0, 400.0, 200, 0.05),
        ];
        for fr in [None, Some(fresh)] {
            let batch = p.route_batch(&qs, fr);
            let solo: Vec<Route> = qs.iter().map(|q| p.route_with_freshness(q, fr)).collect();
            assert_eq!(batch, solo, "amortization must never flip a route");
        }
        assert!(p.route_batch(&[], None).is_empty());
    }

    #[test]
    fn merge_takes_the_worst_case_across_shards() {
        let mut a: RouteProfiles = [None; 5];
        a[Route::Exact3.idx()] = Some(MethodProfile::EXACT);
        a[Route::Appx2.idx()] = approx(0.01, false, 64);
        let mut b = a;
        b[Route::Appx2.idx()] = approx(0.03, false, 32);
        let merged = merge_profiles(&[a, b]);
        let m = merged[Route::Appx2.idx()].unwrap();
        assert_eq!(m.eps, Some(0.03), "largest ε wins");
        assert_eq!(m.max_k, Some(32), "smallest cap wins");
        assert_eq!(merged[Route::Exact3.idx()], Some(MethodProfile::EXACT));
        // A route missing on any shard is missing in the merge.
        b[Route::Appx2.idx()] = None;
        assert!(merge_profiles(&[a, b])[Route::Appx2.idx()].is_none());
        assert!(merge_profiles(&[])[Route::Exact3.idx()].is_none());
    }

    #[test]
    fn route_table_helpers() {
        assert_eq!(Route::ALL.len(), 5);
        for (i, r) in Route::ALL.iter().enumerate() {
            assert_eq!(r.idx(), i);
        }
        assert!(Route::Appx2.cacheable() && Route::Appx1.cacheable());
        assert!(!Route::Appx2Plus.cacheable() && !Route::Exact3.cacheable());
        assert_eq!(Route::Appx2Plus.name(), "APPX2+");
        assert!(MethodSet::default().contains(Route::Exact3));
        assert!(MethodSet::default().any_approx());
        let p = Planner::new(params(), profiles());
        assert!(p.profile(Route::Appx2).is_some());
        assert!(p.profile(Route::Appx1).is_none());
        assert!(p.params().span > 0.0);
    }
}
