//! The serving engine: partition, scatter, gather, merge.

use crate::config::ServeConfig;
use crate::planner::{merge_profiles, Planner, PlannerParams, Route};
use crate::query::ServeQuery;
use crate::report::{RouteStats, ServeReport};
use crate::shard::{worker_main, QueryJob, ToWorker, WorkerReply};
use chronorank_core::{ObjectId, TemporalObject, TemporalSet, TopK};
use chronorank_storage::IoStats;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// A worker thread could not be spawned.
    Spawn(String),
    /// A shard failed to build its indexes.
    Build {
        /// Which shard failed.
        shard: usize,
        /// The underlying build error.
        message: String,
    },
    /// A worker failed to answer a query.
    Query(String),
    /// A worker thread died (channel closed).
    WorkerGone,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Spawn(e) => write!(f, "failed to spawn worker: {e}"),
            ServeError::Build { shard, message } => {
                write!(f, "shard {shard} failed to build: {message}")
            }
            ServeError::Query(e) => write!(f, "query failed: {e}"),
            ServeError::WorkerGone => write!(f, "a worker thread terminated unexpectedly"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Result of [`ServeEngine::run_stream`].
#[derive(Debug)]
pub struct StreamOutcome {
    /// One merged answer per input query, input order.
    pub answers: Vec<TopK>,
    /// Wall time for the whole (pipelined) stream.
    pub elapsed_secs: f64,
}

impl StreamOutcome {
    /// Stream throughput in queries per second.
    pub fn qps(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.answers.len() as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

struct Worker {
    tx: Sender<ToWorker>,
    handle: Option<JoinHandle<()>>,
}

/// The sharded, cost-routed serving engine (see crate docs).
///
/// Owns `W` worker threads, each holding one object partition with its own
/// indexes, buffer pools, and result cache. Every query is routed once by
/// the [`Planner`], scattered to all shards, and the shard-local top-k
/// lists are k-way merged into the global answer.
pub struct ServeEngine {
    workers: Vec<Worker>,
    reply_rx: Receiver<WorkerReply>,
    planner: Planner,
    domain: (f64, f64),
    next_qid: u64,
    // --- accumulated statistics ---
    routes: [RouteStats; 5],
    shard_io: Vec<IoStats>,
    cache_hits: u64,
    cache_lookups: u64,
    queries: u64,
    elapsed_secs: f64,
    index_bytes: u64,
    build_secs: f64,
}

impl ServeEngine {
    /// Partition `set` across `config.workers` shards (round-robin by
    /// object id), build every shard's indexes concurrently, and return
    /// the ready-to-serve engine.
    pub fn new(set: &TemporalSet, config: ServeConfig) -> Result<Self, ServeError> {
        let t0 = Instant::now();
        let w = config.workers.clamp(1, set.num_objects());
        let (reply_tx, reply_rx) = channel();
        let (build_tx, build_rx) = channel();
        let mut workers = Vec::with_capacity(w);
        for (shard, (subset, global_ids)) in partition(set, w).into_iter().enumerate() {
            let (tx, rx) = channel();
            let (btx, rtx) = (build_tx.clone(), reply_tx.clone());
            let handle = std::thread::Builder::new()
                .name(format!("chronorank-serve-{shard}"))
                .spawn(move || worker_main(shard, subset, global_ids, config, rx, btx, rtx))
                .map_err(|e| ServeError::Spawn(e.to_string()))?;
            workers.push(Worker { tx, handle: Some(handle) });
        }
        drop(build_tx);
        drop(reply_tx);

        // Build handshake: every shard reports its built methods'
        // `MethodProfile`s (the object-safe `TopKMethod` surface) and its
        // size; the planner routes against the worst case across shards.
        let (mut max_m, mut max_n, mut index_bytes) = (0u64, 0u64, 0u64);
        let mut shard_profiles = Vec::with_capacity(w);
        for _ in 0..w {
            let outcome = build_rx.recv().map_err(|_| ServeError::WorkerGone)?;
            match outcome.result {
                Ok(info) => {
                    max_m = max_m.max(info.m);
                    max_n = max_n.max(info.n);
                    index_bytes += info.size_bytes;
                    shard_profiles.push(info.profiles);
                }
                Err(message) => {
                    return Err(ServeError::Build { shard: outcome.shard, message });
                }
            }
        }
        let planner = Planner::new(
            PlannerParams {
                shard_m: max_m,
                shard_n: max_n,
                block: config.store.block_size as u64,
                r: config.approx.r as u64,
                span: set.span(),
            },
            merge_profiles(&shard_profiles),
        );
        Ok(Self {
            workers,
            reply_rx,
            planner,
            domain: (set.t_min(), set.t_max()),
            next_qid: 0,
            routes: [RouteStats::default(); 5],
            shard_io: vec![IoStats::default(); w],
            cache_hits: 0,
            cache_lookups: 0,
            queries: 0,
            elapsed_secs: 0.0,
            index_bytes,
            build_secs: t0.elapsed().as_secs_f64(),
        })
    }

    /// Number of worker shards actually running.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The served data's time domain `(t_min, t_max)` — what remote
    /// clients need to form meaningful query intervals.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// The planner's routing decision for `q` (without executing it).
    pub fn route_for(&self, q: &ServeQuery) -> Route {
        self.planner.route(q)
    }

    /// The engine's router (its merged worst-case [`MethodProfile`]s are
    /// how serving layers above — the network tier — learn the achieved ε
    /// behind each route they answer on).
    ///
    /// [`MethodProfile`]: chronorank_core::MethodProfile
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Re-configure the emulated per-block-read device latency on every
    /// shard (see [`crate::ServeConfig::simulated_read_latency`]). Takes
    /// effect for all queries submitted after this call.
    pub fn set_simulated_read_latency(
        &mut self,
        latency: Option<std::time::Duration>,
    ) -> Result<(), ServeError> {
        for worker in &self.workers {
            worker.tx.send(ToWorker::SetLatency(latency)).map_err(|_| ServeError::WorkerGone)?;
        }
        Ok(())
    }

    /// Answer one query: route, scatter to all shards, k-way merge.
    pub fn query(&mut self, q: ServeQuery) -> Result<TopK, ServeError> {
        self.query_routed(q).map(|(top, _)| top)
    }

    /// [`ServeEngine::query`], also returning the route the planner chose
    /// for exactly this execution (the decision and the answer are taken
    /// atomically, so a reporting layer can never attribute an answer to
    /// the wrong route).
    pub fn query_routed(&mut self, q: ServeQuery) -> Result<(TopK, Route), ServeError> {
        let t0 = Instant::now();
        let route = self.planner.route(&q);
        let qid = self.next_qid;
        self.next_qid += 1;
        self.scatter(QueryJob { qid, query: q, route })?;

        let w = self.workers.len();
        let mut lists = Vec::with_capacity(w);
        let mut first_err = None;
        for _ in 0..w {
            let reply = self.reply_rx.recv().map_err(|_| ServeError::WorkerGone)?;
            debug_assert_eq!(reply.qid, qid);
            self.absorb(&reply);
            match reply.result {
                Ok(entries) => lists.push(entries),
                Err(e) => first_err = Some(e),
            }
        }
        if let Some(e) = first_err {
            return Err(ServeError::Query(e));
        }
        let top = merge_ranked(&lists, q.k);
        let dt = t0.elapsed().as_secs_f64();
        self.routes[route.idx()].queries += 1;
        self.routes[route.idx()].secs += dt;
        self.queries += 1;
        self.elapsed_secs += dt;
        Ok((top, route))
    }

    /// Answer a whole query stream, pipelined: every query is scattered up
    /// front and the shards drain their queues independently, so the wall
    /// time measures serving throughput rather than per-query round trips.
    pub fn run_stream(&mut self, queries: &[ServeQuery]) -> Result<StreamOutcome, ServeError> {
        if queries.is_empty() {
            return Ok(StreamOutcome { answers: Vec::new(), elapsed_secs: 0.0 });
        }
        let t0 = Instant::now();
        let routes: Vec<Route> = queries.iter().map(|q| self.planner.route(q)).collect();
        let base = self.next_qid;
        self.next_qid += queries.len() as u64;
        for (i, (q, route)) in queries.iter().zip(&routes).enumerate() {
            self.scatter(QueryJob { qid: base + i as u64, query: *q, route: *route })?;
        }

        let w = self.workers.len();
        let mut partial: Vec<Vec<Vec<(ObjectId, f64)>>> = vec![Vec::new(); queries.len()];
        let mut answers: Vec<Option<TopK>> = (0..queries.len()).map(|_| None).collect();
        let mut first_err = None;
        for _ in 0..queries.len() * w {
            let reply = self.reply_rx.recv().map_err(|_| ServeError::WorkerGone)?;
            let i = (reply.qid - base) as usize;
            self.absorb(&reply);
            match reply.result {
                Ok(entries) => {
                    partial[i].push(entries);
                    if partial[i].len() == w {
                        answers[i] = Some(merge_ranked(&partial[i], queries[i].k));
                        partial[i] = Vec::new();
                    }
                }
                Err(e) => first_err = Some(e),
            }
        }
        if let Some(e) = first_err {
            return Err(ServeError::Query(e));
        }
        let elapsed_secs = t0.elapsed().as_secs_f64();
        let per_query = elapsed_secs / queries.len() as f64;
        for route in &routes {
            self.routes[route.idx()].queries += 1;
            self.routes[route.idx()].secs += per_query;
        }
        self.queries += queries.len() as u64;
        self.elapsed_secs += elapsed_secs;
        let answers =
            answers.into_iter().map(|a| a.expect("all shards replied")).collect::<Vec<_>>();
        Ok(StreamOutcome { answers, elapsed_secs })
    }

    /// A snapshot of everything served so far.
    pub fn report(&self) -> ServeReport {
        ServeReport {
            workers: self.workers.len(),
            queries: self.queries,
            elapsed_secs: self.elapsed_secs,
            routes: self.routes,
            cache_hits: self.cache_hits,
            cache_lookups: self.cache_lookups,
            io: self.shard_io.iter().sum(),
            index_bytes: self.index_bytes,
            build_secs: self.build_secs,
        }
    }

    fn scatter(&self, job: QueryJob) -> Result<(), ServeError> {
        for worker in &self.workers {
            worker.tx.send(ToWorker::Query(job)).map_err(|_| ServeError::WorkerGone)?;
        }
        Ok(())
    }

    fn absorb(&mut self, reply: &WorkerReply) {
        self.shard_io[reply.shard] = reply.io;
        if let Some(hit) = reply.cache {
            self.cache_lookups += 1;
            self.cache_hits += hit as u64;
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        for worker in &self.workers {
            worker.tx.send(ToWorker::Shutdown).ok();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                handle.join().ok();
            }
        }
    }
}

/// Round-robin object partition: shard `s` holds every object with
/// `id % w == s`, re-numbered densely (`local = id / w`), with the
/// local → global id map. Public because other sharded layers (the live
/// ingest engine) must partition with *identical* arithmetic — their
/// global↔local id translation assumes exactly this scheme.
pub fn partition(set: &TemporalSet, w: usize) -> Vec<(TemporalSet, Vec<ObjectId>)> {
    let mut objects: Vec<Vec<TemporalObject>> = vec![Vec::new(); w];
    let mut global_ids: Vec<Vec<ObjectId>> = vec![Vec::new(); w];
    for o in set.objects() {
        let s = o.id as usize % w;
        let local = objects[s].len() as ObjectId;
        objects[s].push(TemporalObject { id: local, curve: o.curve.clone() });
        global_ids[s].push(o.id);
    }
    objects
        .into_iter()
        .zip(global_ids)
        .map(|(objs, ids)| {
            let subset =
                TemporalSet::from_objects(objs).expect("w ≤ m guarantees every shard is non-empty");
            (subset, ids)
        })
        .collect()
}

/// Item of the k-way merge heap: best-first (highest score, then smallest
/// id — the same deterministic order every method uses).
struct Best(f64, ObjectId, usize);

impl PartialEq for Best {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Best {}
impl PartialOrd for Best {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Best {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(other.1.cmp(&self.1))
    }
}

/// K-way merge of per-shard ranked lists (each descending score, ties by
/// ascending id) into the global top-`k`. Shards partition the objects, so
/// no deduplication is needed. Public so other sharded layers (the live
/// ingest engine) can gather with identical ordering semantics.
pub fn merge_ranked(lists: &[Vec<(ObjectId, f64)>], k: usize) -> TopK {
    let mut heap = std::collections::BinaryHeap::with_capacity(lists.len());
    let mut cursors = vec![0usize; lists.len()];
    for (s, list) in lists.iter().enumerate() {
        if let Some(&(id, score)) = list.first() {
            heap.push(Best(score, id, s));
        }
    }
    let mut merged = Vec::with_capacity(k.min(lists.iter().map(Vec::len).sum()));
    while merged.len() < k {
        let Some(Best(score, id, s)) = heap.pop() else { break };
        merged.push((id, score));
        cursors[s] += 1;
        if let Some(&(nid, nscore)) = lists[s].get(cursors[s]) {
            heap.push(Best(nscore, nid, s));
        }
    }
    TopK::from_ranked(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_interleaves_and_breaks_ties_by_id() {
        let lists = vec![
            vec![(0u32, 9.0), (2, 5.0), (4, 1.0)],
            vec![(1u32, 9.0), (3, 5.0)],
            vec![(5u32, 7.0)],
        ];
        let top = merge_ranked(&lists, 4);
        assert_eq!(top.entries(), &[(0, 9.0), (1, 9.0), (5, 7.0), (2, 5.0)]);
    }

    #[test]
    fn merge_handles_short_and_empty_lists() {
        let lists = vec![vec![], vec![(7u32, 3.0)]];
        let top = merge_ranked(&lists, 5);
        assert_eq!(top.entries(), &[(7, 3.0)]);
        assert!(merge_ranked(&[], 3).is_empty());
        assert!(merge_ranked(&lists, 0).is_empty());
    }

    #[test]
    fn merge_equals_flat_sort() {
        // Cross-check the heap merge against the obvious oracle.
        let lists: Vec<Vec<(ObjectId, f64)>> = (0..4)
            .map(|s| {
                let mut l: Vec<(ObjectId, f64)> = (0u32..20)
                    .map(|i| (4 * i + s as u32, ((s * 31 + i as usize * 17) % 23) as f64))
                    .collect();
                l.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                l
            })
            .collect();
        let mut flat: Vec<(ObjectId, f64)> = lists.iter().flatten().copied().collect();
        flat.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        flat.truncate(7);
        assert_eq!(merge_ranked(&lists, 7).entries(), &flat[..]);
    }
}
