//! The serving engine: partition, build once, scatter to a worker pool
//! over shared snapshots, gather, merge.

use crate::config::ServeConfig;
use crate::obs::ServeObs;
use crate::panic_message;
use crate::planner::{merge_profiles, Planner, PlannerParams, Route};
use crate::query::ServeQuery;
use crate::report::{RouteStats, ServeReport};
use crate::shard::{Shard, ShardAnswer};
use chronorank_core::{ObjectId, TemporalObject, TemporalSet, TopK};
use chronorank_obs::{
    elapsed_us, AttrValue, CacheOutcome, FlightRecorder, IoDelta, QueryTrace, Registry, ShardSpan,
    SpanId, SpanSink, TraceId,
};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// A worker thread could not be spawned.
    Spawn(String),
    /// A shard failed to build its indexes.
    Build {
        /// Which shard failed.
        shard: usize,
        /// The underlying build error.
        message: String,
    },
    /// A worker failed to answer a query.
    Query(String),
    /// A worker thread died (channel closed).
    WorkerGone,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Spawn(e) => write!(f, "failed to spawn worker: {e}"),
            ServeError::Build { shard, message } => {
                write!(f, "shard {shard} failed to build: {message}")
            }
            ServeError::Query(e) => write!(f, "query failed: {e}"),
            ServeError::WorkerGone => write!(f, "a worker thread terminated unexpectedly"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Everything one executed query produced — for the tracing path, which
/// needs the per-shard fan-out alongside the answer.
struct QueryOutcome {
    top: TopK,
    route: Route,
    total_us: u64,
    cache: CacheOutcome,
    spans: Vec<ShardSpan>,
}

/// Result of [`ServeEngine::run_stream`].
#[derive(Debug)]
pub struct StreamOutcome {
    /// One merged answer per input query, input order.
    pub answers: Vec<TopK>,
    /// Wall time for the whole (pipelined) stream.
    pub elapsed_secs: f64,
}

impl StreamOutcome {
    /// Stream throughput in queries per second.
    pub fn qps(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.answers.len() as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

/// One unit of pool work: answer `work` on `shard`, replies tagged.
struct Task {
    shard: Arc<Shard>,
    /// Index of `shard` within the engine (trace attribution).
    shard_idx: usize,
    work: TaskWork,
    reply: Sender<TaskReply>,
}

enum TaskWork {
    /// One query (the solo and pipelined-stream paths).
    One {
        query: ServeQuery,
        route: Route,
        /// Index of the query within its stream (0 for single queries).
        tag: u64,
    },
    /// One shard's view of an admitted batch window
    /// ([`Shard::answer_batch`]): probe-identical queries share one index
    /// probe. The window is `Arc`-shared across the per-shard tasks; reply
    /// tags are window indexes. Batch replies carry the *window's*
    /// wall-clock and reads (per-probe attribution is a solo/stream
    /// feature — dedup makes per-query probes fictional here).
    Batch(Arc<Vec<(ServeQuery, Route)>>),
}

struct TaskReply {
    tag: u64,
    shard: usize,
    result: ShardAnswer,
    /// Probe wall time (µs) measured on the worker thread.
    elapsed_us: u64,
    /// Block reads this probe performed (thread-attributed).
    reads: u64,
    /// `Some(hit)` when the shard's result cache was consulted.
    cache: Option<bool>,
}

/// A fixed set of worker threads draining one shared task queue. Workers
/// hold no state of their own — every task carries the `Arc` of the shard
/// it probes, so any worker can serve any shard at any time.
struct WorkerPool {
    task_tx: Option<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> Result<Self, ServeError> {
        let (task_tx, task_rx) = channel::<Task>();
        let task_rx = Arc::new(Mutex::new(task_rx));
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers.max(1) {
            let rx = Arc::clone(&task_rx);
            let handle = std::thread::Builder::new()
                .name(format!("chronorank-serve-{w}"))
                .spawn(move || worker_main(&rx))
                .map_err(|e| ServeError::Spawn(e.to_string()))?;
            handles.push(handle);
        }
        Ok(Self { task_tx: Some(task_tx), handles })
    }

    fn submit(&self, task: Task) -> Result<(), ServeError> {
        self.task_tx
            .as_ref()
            .expect("pool sender lives until drop")
            .send(task)
            .map_err(|_| ServeError::WorkerGone)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the queue is the shutdown signal; workers drain and exit.
        self.task_tx.take();
        for handle in self.handles.drain(..) {
            handle.join().ok();
        }
    }
}

/// Thread body of one pool worker. Panic-safe: a panicking probe becomes
/// an `Err` reply, so the gathering caller is never left short.
fn worker_main(task_rx: &Mutex<Receiver<Task>>) {
    loop {
        // Holding the lock while blocked in `recv` is the hand-off: idle
        // siblings queue on the mutex and take the next task in turn.
        let task = {
            let rx = task_rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match rx.recv() {
                Ok(task) => task,
                Err(_) => return, // queue closed: engine is shutting down
            }
        };
        let t0 = Instant::now();
        let reads_before = chronorank_storage::IoCounter::thread_reads();
        match &task.work {
            TaskWork::One { query, route, tag } => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    task.shard.answer(*query, *route)
                }));
                let (result, cache) = outcome.unwrap_or_else(|payload| {
                    (Err(format!("query panicked: {}", panic_message(&*payload))), None)
                });
                // A dropped receiver means the query's caller is gone; fine.
                task.reply
                    .send(TaskReply {
                        tag: *tag,
                        shard: task.shard_idx,
                        result,
                        elapsed_us: elapsed_us(t0),
                        reads: chronorank_storage::IoCounter::thread_reads() - reads_before,
                        cache,
                    })
                    .ok();
            }
            TaskWork::Batch(window) => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    task.shard.answer_batch(window)
                }));
                let answers = outcome.unwrap_or_else(|payload| {
                    let msg = format!("query panicked: {}", panic_message(&*payload));
                    window.iter().map(|_| (Err(msg.clone()), None)).collect()
                });
                let elapsed = elapsed_us(t0);
                let reads = chronorank_storage::IoCounter::thread_reads() - reads_before;
                for (tag, (result, cache)) in answers.into_iter().enumerate() {
                    task.reply
                        .send(TaskReply {
                            tag: tag as u64,
                            shard: task.shard_idx,
                            result,
                            elapsed_us: elapsed,
                            reads,
                            cache,
                        })
                        .ok();
                }
            }
        }
    }
}

/// Coordinator-side counters behind one mutex (locked once per query or
/// stream, off the scatter-gather hot path).
struct Served {
    routes: [RouteStats; 5],
    queries: u64,
    elapsed_secs: f64,
}

/// The sharded, cost-routed serving engine (see crate docs).
///
/// Data is partitioned once into immutable [`Arc`]-published shard
/// snapshots; a pool of worker threads answers every query's per-shard
/// parts in parallel and the shard-local top-k lists are k-way merged
/// into the global answer. All query methods take `&self` — the engine
/// itself is `Send + Sync`, so any number of caller threads (e.g. the
/// network tier's engine workers) can query one engine concurrently.
pub struct ServeEngine {
    shards: Vec<Arc<Shard>>,
    pool: WorkerPool,
    planner: Planner,
    domain: (f64, f64),
    served: Mutex<Served>,
    index_bytes: u64,
    build_secs: f64,
    obs: ServeObs,
}

impl ServeEngine {
    /// Partition `set` across `config.workers` shards (round-robin by
    /// object id), build every shard's indexes **concurrently on build
    /// threads**, and serve them with a same-sized worker pool.
    pub fn new(set: &TemporalSet, config: ServeConfig) -> Result<Self, ServeError> {
        let t0 = Instant::now();
        let w = config.workers.clamp(1, set.num_objects());
        let parts = partition(set, w);
        let built: Vec<Result<Shard, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|(subset, global_ids)| {
                    let config = &config;
                    scope.spawn(move || {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            Shard::build(&subset, global_ids, config)
                        }))
                        .map_err(|p| format!("build panicked: {}", panic_message(&*p)))
                        .and_then(|r| r.map_err(|e| e.to_string()))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("build threads do not panic")).collect()
        });
        let mut shards = Vec::with_capacity(w);
        for (shard, outcome) in built.into_iter().enumerate() {
            match outcome {
                Ok(s) => shards.push(Arc::new(s)),
                Err(message) => return Err(ServeError::Build { shard, message }),
            }
        }
        let mut engine = Self::from_shards(shards, w)?;
        engine.build_secs = t0.elapsed().as_secs_f64();
        Ok(engine)
    }

    /// Serve an already-built set of shard snapshots with a pool of
    /// `pool_workers` threads. The same `Arc<Shard>`s can back any number
    /// of engines — this is how the bench harness measures parallel
    /// speedup over **one** shared snapshot, and how a deployment could
    /// resize its worker pool without rebuilding anything.
    pub fn from_shards(shards: Vec<Arc<Shard>>, pool_workers: usize) -> Result<Self, ServeError> {
        assert!(!shards.is_empty(), "an engine needs at least one shard");
        let facts: Vec<_> = shards.iter().map(|s| s.facts()).collect();
        let t_min = facts.iter().map(|f| f.t_min).fold(f64::INFINITY, f64::min);
        let t_max = facts.iter().map(|f| f.t_max).fold(f64::NEG_INFINITY, f64::max);
        let planner = Planner::new(
            PlannerParams {
                shard_m: facts.iter().map(|f| f.m).max().unwrap_or(0),
                shard_n: facts.iter().map(|f| f.n).max().unwrap_or(0),
                block: facts[0].block,
                r: facts[0].r,
                span: (t_max - t_min).max(0.0),
            },
            merge_profiles(&facts.iter().map(|f| f.profiles).collect::<Vec<_>>()),
        );
        Ok(Self {
            shards,
            pool: WorkerPool::new(pool_workers)?,
            planner,
            domain: (t_min, t_max),
            served: Mutex::new(Served {
                routes: [RouteStats::default(); 5],
                queries: 0,
                elapsed_secs: 0.0,
            }),
            index_bytes: facts.iter().map(|f| f.size_bytes).sum(),
            build_secs: 0.0,
            obs: ServeObs::attach(Registry::global()),
        })
    }

    /// Re-attach this engine's instrumentation to `registry` — a private
    /// registry for isolated measurements, or [`Registry::noop`] for the
    /// uninstrumented side of the overhead A/B. Counters restart at the
    /// new registry's values; the flight recorder is replaced too.
    pub fn set_registry(&mut self, registry: &Registry) {
        self.obs = ServeObs::attach(registry);
    }

    /// The engine's slow-query flight recorder (no-op when attached to a
    /// no-op registry).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.obs.recorder
    }

    /// Re-arm the slow-query trace threshold (µs; `0` traces everything).
    pub fn set_slow_query_threshold_us(&self, us: u64) {
        self.obs.recorder.set_threshold_us(us);
    }

    /// Number of shard partitions.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The shard snapshots this engine serves — shareable with further
    /// engines via [`ServeEngine::from_shards`].
    pub fn shards(&self) -> Vec<Arc<Shard>> {
        self.shards.clone()
    }

    /// The served data's time domain `(t_min, t_max)` — what remote
    /// clients need to form meaningful query intervals.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// The planner's routing decision for `q` (without executing it).
    pub fn route_for(&self, q: &ServeQuery) -> Route {
        self.planner.route(q)
    }

    /// The engine's router (its merged worst-case [`MethodProfile`]s are
    /// how serving layers above — the network tier — learn the achieved ε
    /// behind each route they answer on).
    ///
    /// [`MethodProfile`]: chronorank_core::MethodProfile
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// Re-configure the emulated per-block-read device latency on every
    /// shard (see [`crate::ServeConfig::simulated_read_latency`]). Takes
    /// effect immediately (the knob is atomic).
    pub fn set_simulated_read_latency(
        &self,
        latency: Option<std::time::Duration>,
    ) -> Result<(), ServeError> {
        for shard in &self.shards {
            shard.set_latency(latency);
        }
        Ok(())
    }

    /// Answer one query: route, scatter to the pool, k-way merge.
    pub fn query(&self, q: ServeQuery) -> Result<TopK, ServeError> {
        self.query_routed(q).map(|(top, _)| top)
    }

    /// [`ServeEngine::query`], also returning the route the planner chose
    /// for exactly this execution. `&self`: concurrent callers each get
    /// their own private reply channel, so answers can never cross.
    pub fn query_routed(&self, q: ServeQuery) -> Result<(TopK, Route), ServeError> {
        self.query_core(q).map(|out| (out.top, out.route))
    }

    /// [`ServeEngine::query_routed`], joining this execution into an
    /// existing distributed trace: an `engine.query` span is opened as a
    /// child of `parent` on `trace`, and every shard's probe is emitted
    /// as a `shard.probe` child of the engine span — so a wire query's
    /// tree reaches from the remote client all the way into the shards.
    /// With a noop `sink` this costs a branch per span.
    pub fn query_spanned(
        &self,
        q: ServeQuery,
        trace: TraceId,
        parent: SpanId,
        sink: &SpanSink,
    ) -> Result<(TopK, Route), ServeError> {
        // The engine already times itself (`out.total_us`) and its
        // probes, so every span here is emitted from those measurements
        // against one hoisted clock read — no second clock pair on the
        // hot path. Probes are emitted first, parented on a pre-minted
        // id; drain order is by sequence, tree shape is by parent links.
        let out = self.query_core(q)?;
        if !sink.is_noop() {
            let engine_span = SpanId::next();
            let end_us = sink.now_us();
            for s in &out.spans {
                sink.emit_at(
                    SpanId::next(),
                    trace,
                    Some(engine_span),
                    "shard.probe",
                    end_us,
                    s.elapsed_us,
                    [
                        ("shard", AttrValue::U64(s.shard as u64)),
                        ("reads", AttrValue::U64(s.reads)),
                        ("cache_hit", AttrValue::Bool(s.cache_hit)),
                    ],
                );
            }
            sink.emit_at(
                engine_span,
                trace,
                (parent.0 != 0).then_some(parent),
                "engine.query",
                end_us,
                out.total_us,
                [
                    ("route", AttrValue::Sym(out.route.name())),
                    ("k", AttrValue::U64(q.k as u64)),
                    ("cache", AttrValue::Sym(out.cache.name())),
                    ("shards", AttrValue::U64(out.spans.len() as u64)),
                ],
            );
        }
        Ok((out.top, out.route))
    }

    fn query_core(&self, q: ServeQuery) -> Result<QueryOutcome, ServeError> {
        let t0 = Instant::now();
        let route = self.planner.route(&q);
        self.obs.route_decisions[route.idx()].inc();
        let (reply_tx, reply_rx) = channel();
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            self.pool.submit(Task {
                shard: Arc::clone(shard),
                shard_idx,
                work: TaskWork::One { query: q, route, tag: 0 },
                reply: reply_tx.clone(),
            })?;
        }
        drop(reply_tx);
        let mut lists = Vec::with_capacity(self.shards.len());
        let mut spans = Vec::with_capacity(self.shards.len());
        let mut cache = CacheOutcome::Bypass;
        let mut first_err = None;
        for _ in 0..self.shards.len() {
            let reply = reply_rx.recv().map_err(|_| ServeError::WorkerGone)?;
            spans.push(ShardSpan {
                shard: reply.shard,
                elapsed_us: reply.elapsed_us,
                reads: reply.reads,
                cache_hit: reply.cache == Some(true),
            });
            if let Some(hit) = reply.cache {
                cache = cache.fold(hit);
                self.obs.shard_cache(hit);
            }
            match reply.result {
                Ok(entries) => lists.push(entries),
                Err(e) => first_err = Some(e),
            }
        }
        if let Some(e) = first_err {
            return Err(ServeError::Query(e));
        }
        let top = merge_ranked(&lists, q.k);
        let dt = t0.elapsed().as_secs_f64();
        let total_us = (dt * 1e6) as u64;
        self.obs.route_latency_us[route.idx()].record(total_us);
        spans.sort_by_key(|s| s.shard);
        if self.obs.recorder.qualifies(total_us) {
            self.obs.recorder.record(QueryTrace {
                route: route.name(),
                t1: q.t1,
                t2: q.t2,
                k: q.k,
                total_us,
                cache,
                io: IoDelta { reads: spans.iter().map(|s| s.reads).sum(), ..Default::default() },
                shards: spans.clone(),
            });
        }
        let mut served = self.served.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        served.routes[route.idx()].queries += 1;
        served.routes[route.idx()].secs += dt;
        served.queries += 1;
        served.elapsed_secs += dt;
        drop(served);
        Ok(QueryOutcome { top, route, total_us, cache, spans })
    }

    /// Answer a whole query stream, pipelined: every per-shard task is
    /// queued up front and the pool drains them in parallel, so the wall
    /// time measures serving throughput rather than per-query round trips.
    pub fn run_stream(&self, queries: &[ServeQuery]) -> Result<StreamOutcome, ServeError> {
        if queries.is_empty() {
            return Ok(StreamOutcome { answers: Vec::new(), elapsed_secs: 0.0 });
        }
        let t0 = Instant::now();
        let w = self.shards.len();
        let routes: Vec<Route> = queries.iter().map(|q| self.planner.route(q)).collect();
        for route in &routes {
            self.obs.route_decisions[route.idx()].inc();
        }
        let (reply_tx, reply_rx) = channel();
        for (i, (q, route)) in queries.iter().zip(&routes).enumerate() {
            for (shard_idx, shard) in self.shards.iter().enumerate() {
                self.pool.submit(Task {
                    shard: Arc::clone(shard),
                    shard_idx,
                    work: TaskWork::One { query: *q, route: *route, tag: i as u64 },
                    reply: reply_tx.clone(),
                })?;
            }
        }
        drop(reply_tx);

        let mut partial: Vec<Vec<Vec<(ObjectId, f64)>>> = vec![Vec::new(); queries.len()];
        let mut spans: Vec<Vec<ShardSpan>> = vec![Vec::new(); queries.len()];
        let mut caches: Vec<CacheOutcome> = vec![CacheOutcome::Bypass; queries.len()];
        let mut answers: Vec<Option<TopK>> = (0..queries.len()).map(|_| None).collect();
        let mut first_err = None;
        for _ in 0..queries.len() * w {
            let reply = reply_rx.recv().map_err(|_| ServeError::WorkerGone)?;
            let i = reply.tag as usize;
            spans[i].push(ShardSpan {
                shard: reply.shard,
                elapsed_us: reply.elapsed_us,
                reads: reply.reads,
                cache_hit: reply.cache == Some(true),
            });
            if let Some(hit) = reply.cache {
                caches[i] = caches[i].fold(hit);
                self.obs.shard_cache(hit);
            }
            match reply.result {
                Ok(entries) => {
                    partial[i].push(entries);
                    if partial[i].len() == w {
                        answers[i] = Some(merge_ranked(&partial[i], queries[i].k));
                        partial[i] = Vec::new();
                        self.finish_stream_query(queries[i], routes[i], &mut spans[i], caches[i]);
                    }
                }
                Err(e) => first_err = Some(e),
            }
        }
        if let Some(e) = first_err {
            return Err(ServeError::Query(e));
        }
        let elapsed_secs = t0.elapsed().as_secs_f64();
        let per_query = elapsed_secs / queries.len() as f64;
        let mut served = self.served.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for route in &routes {
            served.routes[route.idx()].queries += 1;
            served.routes[route.idx()].secs += per_query;
        }
        served.queries += queries.len() as u64;
        served.elapsed_secs += elapsed_secs;
        drop(served);
        let answers =
            answers.into_iter().map(|a| a.expect("all shards replied")).collect::<Vec<_>>();
        Ok(StreamOutcome { answers, elapsed_secs })
    }

    /// Answer one admitted window of queries as a batch: the planner
    /// routes the whole window together ([`Planner::route_batch`] — costs
    /// amortized over shared probes, routes provably identical to solo
    /// planning), each shard receives the window as **one** pool task and
    /// answers probe-identical queries — same route, `k`, and snapped
    /// interval (snap-keyed routes) or raw interval — with a single index
    /// probe shared across the group (`Shard::answer_batch`), and the
    /// per-shard lists are k-way merged per query. Answers are
    /// bit-identical to issuing every query through [`ServeEngine::query`]
    /// one at a time (the batch agreement suite pins this); what the batch
    /// buys is probe amortization, not approximation. Per-probe latency
    /// attribution and flight-recorder traces stay solo/stream features —
    /// dedup makes per-query probes fictional inside a batch.
    pub fn query_batch(&self, queries: &[ServeQuery]) -> Result<Vec<TopK>, ServeError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let t0 = Instant::now();
        let routes = self.planner.route_batch(queries, None);
        for route in &routes {
            self.obs.route_decisions[route.idx()].inc();
        }
        let window: Arc<Vec<(ServeQuery, Route)>> =
            Arc::new(queries.iter().copied().zip(routes.iter().copied()).collect());
        let (reply_tx, reply_rx) = channel();
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            self.pool.submit(Task {
                shard: Arc::clone(shard),
                shard_idx,
                work: TaskWork::Batch(Arc::clone(&window)),
                reply: reply_tx.clone(),
            })?;
        }
        drop(reply_tx);
        let w = self.shards.len();
        let mut partial: Vec<Vec<Vec<(ObjectId, f64)>>> = vec![Vec::new(); queries.len()];
        let mut answers: Vec<Option<TopK>> = (0..queries.len()).map(|_| None).collect();
        let mut first_err = None;
        for _ in 0..queries.len() * w {
            let reply = reply_rx.recv().map_err(|_| ServeError::WorkerGone)?;
            let i = reply.tag as usize;
            if let Some(hit) = reply.cache {
                self.obs.shard_cache(hit);
            }
            match reply.result {
                Ok(entries) => {
                    partial[i].push(entries);
                    if partial[i].len() == w {
                        answers[i] = Some(merge_ranked(&partial[i], queries[i].k));
                        partial[i] = Vec::new();
                    }
                }
                Err(e) => first_err = Some(e),
            }
        }
        if let Some(e) = first_err {
            return Err(ServeError::Query(e));
        }
        let elapsed_secs = t0.elapsed().as_secs_f64();
        let per_query = elapsed_secs / queries.len() as f64;
        let mut served = self.served.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for route in &routes {
            served.routes[route.idx()].queries += 1;
            served.routes[route.idx()].secs += per_query;
        }
        served.queries += queries.len() as u64;
        served.elapsed_secs += elapsed_secs;
        drop(served);
        Ok(answers.into_iter().map(|a| a.expect("all shards replied")).collect())
    }

    /// Per-query epilogue of the pipelined stream path: record the
    /// route's latency (the slowest shard span — the critical path; the
    /// queue wait of a pipelined stream is throughput, not latency) and
    /// trace the query if it qualifies as slow.
    fn finish_stream_query(
        &self,
        q: ServeQuery,
        route: Route,
        spans: &mut Vec<ShardSpan>,
        cache: CacheOutcome,
    ) {
        let total_us = spans.iter().map(|s| s.elapsed_us).max().unwrap_or(0);
        self.obs.route_latency_us[route.idx()].record(total_us);
        if self.obs.recorder.qualifies(total_us) {
            let mut shards = std::mem::take(spans);
            shards.sort_by_key(|s| s.shard);
            self.obs.recorder.record(QueryTrace {
                route: route.name(),
                t1: q.t1,
                t2: q.t2,
                k: q.k,
                total_us,
                cache,
                io: IoDelta { reads: shards.iter().map(|s| s.reads).sum(), ..Default::default() },
                shards,
            });
        }
    }

    /// Mirror the current [`ServeReport`] into this engine's registry as
    /// gauges, so the wire `METRICS` op is the one scrape point for the
    /// numbers [`ServeEngine::report`] exposes in-process (the report
    /// stays the thin programmatic view). Cold path: registration is
    /// idempotent and only this call touches the registry mutex.
    pub fn sync_obs(&self) {
        let registry = &self.obs.registry;
        if registry.is_noop() {
            return;
        }
        let report = self.report();
        let g = |name: &str, help: &str, v: u64| registry.gauge(name, help).set_u64(v);
        g("chronorank_serve_workers", "serve shard count", report.workers as u64);
        g("chronorank_serve_queries", "queries served so far", report.queries);
        g(
            "chronorank_serve_busy_us",
            "cumulative query wall time, microseconds",
            (report.elapsed_secs * 1e6) as u64,
        );
        g("chronorank_serve_cache_hits", "shard result-cache hits", report.cache_hits);
        g("chronorank_serve_cache_lookups", "shard result-cache lookups", report.cache_lookups);
        g("chronorank_serve_index_bytes", "bytes across all shard indexes", report.index_bytes);
        g(
            "chronorank_serve_build_us",
            "wall time the engine spent building, microseconds",
            (report.build_secs * 1e6) as u64,
        );
        g("chronorank_serve_io_reads", "block reads across all shards", report.io.reads);
        g("chronorank_serve_io_writes", "block writes across all shards", report.io.writes);
        for route in Route::ALL {
            let stats = report.routes[route.idx()];
            registry
                .gauge_with(
                    "chronorank_serve_route_queries",
                    "queries served per route",
                    &[("route", route.name())],
                )
                .set_u64(stats.queries);
            registry
                .gauge_with(
                    "chronorank_serve_route_busy_us",
                    "cumulative wall time per route, microseconds",
                    &[("route", route.name())],
                )
                .set_u64((stats.secs * 1e6) as u64);
        }
    }

    /// A snapshot of everything served so far. Cache and IO counters are
    /// read straight off the shared shards.
    pub fn report(&self) -> ServeReport {
        let served = self.served.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let (cache_hits, cache_lookups) = self
            .shards
            .iter()
            .map(|s| s.cache_counters())
            .fold((0, 0), |(h, l), (sh, sl)| (h + sh, l + sl));
        ServeReport {
            workers: self.shards.len(),
            queries: served.queries,
            elapsed_secs: served.elapsed_secs,
            routes: served.routes,
            cache_hits,
            cache_lookups,
            io: self.shards.iter().map(|s| s.io_total()).sum(),
            index_bytes: self.index_bytes,
            build_secs: self.build_secs,
        }
    }
}

/// Round-robin object partition: shard `s` holds every object with
/// `id % w == s`, re-numbered densely (`local = id / w`), with the
/// local → global id map. Public because other sharded layers (the live
/// ingest engine) must partition with *identical* arithmetic — their
/// global↔local id translation assumes exactly this scheme.
pub fn partition(set: &TemporalSet, w: usize) -> Vec<(TemporalSet, Vec<ObjectId>)> {
    let mut objects: Vec<Vec<TemporalObject>> = vec![Vec::new(); w];
    let mut global_ids: Vec<Vec<ObjectId>> = vec![Vec::new(); w];
    for o in set.objects() {
        let s = o.id as usize % w;
        let local = objects[s].len() as ObjectId;
        objects[s].push(TemporalObject { id: local, curve: o.curve.clone() });
        global_ids[s].push(o.id);
    }
    objects
        .into_iter()
        .zip(global_ids)
        .map(|(objs, ids)| {
            let subset =
                TemporalSet::from_objects(objs).expect("w ≤ m guarantees every shard is non-empty");
            (subset, ids)
        })
        .collect()
}

/// Item of the k-way merge heap: best-first (highest score, then smallest
/// id — the same deterministic order every method uses).
struct Best(f64, ObjectId, usize);

impl PartialEq for Best {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Best {}
impl PartialOrd for Best {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Best {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(other.1.cmp(&self.1))
    }
}

/// K-way merge of per-shard ranked lists (each descending score, ties by
/// ascending id) into the global top-`k`. Shards partition the objects, so
/// no deduplication is needed, and the (score, id) order is total, so the
/// result is identical whatever order the lists were gathered in. Public
/// so other sharded layers (the live ingest engine) can gather with
/// identical ordering semantics.
pub fn merge_ranked(lists: &[Vec<(ObjectId, f64)>], k: usize) -> TopK {
    let mut heap = std::collections::BinaryHeap::with_capacity(lists.len());
    let mut cursors = vec![0usize; lists.len()];
    for (s, list) in lists.iter().enumerate() {
        if let Some(&(id, score)) = list.first() {
            heap.push(Best(score, id, s));
        }
    }
    let mut merged = Vec::with_capacity(k.min(lists.iter().map(Vec::len).sum()));
    while merged.len() < k {
        let Some(Best(score, id, s)) = heap.pop() else { break };
        merged.push((id, score));
        cursors[s] += 1;
        if let Some(&(nid, nscore)) = lists[s].get(cursors[s]) {
            heap.push(Best(nscore, nid, s));
        }
    }
    TopK::from_ranked(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_interleaves_and_breaks_ties_by_id() {
        let lists = vec![
            vec![(0u32, 9.0), (2, 5.0), (4, 1.0)],
            vec![(1u32, 9.0), (3, 5.0)],
            vec![(5u32, 7.0)],
        ];
        let top = merge_ranked(&lists, 4);
        assert_eq!(top.entries(), &[(0, 9.0), (1, 9.0), (5, 7.0), (2, 5.0)]);
    }

    #[test]
    fn merge_handles_short_and_empty_lists() {
        let lists = vec![vec![], vec![(7u32, 3.0)]];
        let top = merge_ranked(&lists, 5);
        assert_eq!(top.entries(), &[(7, 3.0)]);
        assert!(merge_ranked(&[], 3).is_empty());
        assert!(merge_ranked(&lists, 0).is_empty());
    }

    #[test]
    fn merge_equals_flat_sort() {
        // Cross-check the heap merge against the obvious oracle.
        let lists: Vec<Vec<(ObjectId, f64)>> = (0..4)
            .map(|s| {
                let mut l: Vec<(ObjectId, f64)> = (0u32..20)
                    .map(|i| (4 * i + s as u32, ((s * 31 + i as usize * 17) % 23) as f64))
                    .collect();
                l.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                l
            })
            .collect();
        let mut flat: Vec<(ObjectId, f64)> = lists.iter().flatten().copied().collect();
        flat.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        flat.truncate(7);
        assert_eq!(merge_ranked(&lists, 7).entries(), &flat[..]);
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut lists =
            vec![vec![(0u32, 9.0), (4, 1.0)], vec![(1u32, 8.0)], vec![(2u32, 9.0), (5, 0.5)]];
        let want = merge_ranked(&lists, 4);
        lists.reverse();
        assert_eq!(merge_ranked(&lists, 4).entries(), want.entries());
    }
}
