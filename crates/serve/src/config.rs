//! Engine configuration.

use crate::planner::MethodSet;
use chronorank_core::ApproxConfig;
use chronorank_storage::{ScaleBudget, StoreConfig};
use std::time::Duration;

/// Configuration of a [`crate::ServeEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker (shard) count `W`; clamped to `[1, m]`.
    pub workers: usize,
    /// Which methods every shard builds (EXACT3 always; see [`MethodSet`]).
    pub methods: MethodSet,
    /// Parameters of the shard-local approximate indexes (`r`, `kmax`,
    /// BREAKPOINTS2 construction). The `store` field inside is ignored —
    /// [`ServeConfig::store`] applies to every index the engine builds.
    pub approx: ApproxConfig,
    /// Storage settings (block size, per-file buffer-pool frames) for all
    /// shard-local indexes.
    pub store: StoreConfig,
    /// Entries per shard-local result cache; `0` disables caching.
    pub cache_capacity: usize,
    /// When set, every shard sleeps this long per block *read* its index
    /// performs — emulating an IO-bound storage device so that serving
    /// experiments measure the paper's cost unit (block IOs) as wall time.
    /// `None` (the default) measures raw in-memory speed.
    pub simulated_read_latency: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            methods: MethodSet::default(),
            approx: ApproxConfig::default(),
            store: StoreConfig::default(),
            cache_capacity: 1024,
            simulated_read_latency: None,
        }
    }
}

impl ServeConfig {
    /// Derive the storage settings from an explicit memory budget: the
    /// budget's pool share is split over the files the engine keeps open —
    /// roughly `4 × workers` long-lived [`chronorank_storage::PagedFile`]s
    /// (per shard: the EXACT3 tree plus an approximate index's directory,
    /// sub-tree and list files). Everything else in `self` is unchanged.
    pub fn with_scale_budget(mut self, budget: ScaleBudget) -> Self {
        self.store = budget.store_config(4 * self.workers.max(1));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_budget_sizes_pools_per_worker() {
        let budget = ScaleBudget::new(64 << 20);
        let one = ServeConfig { workers: 1, ..Default::default() }.with_scale_budget(budget);
        let four = ServeConfig { workers: 4, ..Default::default() }.with_scale_budget(budget);
        assert_eq!(one.store.block_size, budget.block_size());
        assert_eq!(one.store.pool_capacity, four.store.pool_capacity * 4);
        // Other settings survive the builder untouched.
        assert_eq!(one.workers, 1);
        assert_eq!(four.workers, 4);
    }
}
