//! Engine configuration.

use crate::planner::MethodSet;
use chronorank_core::ApproxConfig;
use chronorank_storage::StoreConfig;
use std::time::Duration;

/// Configuration of a [`crate::ServeEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker (shard) count `W`; clamped to `[1, m]`.
    pub workers: usize,
    /// Which methods every shard builds (EXACT3 always; see [`MethodSet`]).
    pub methods: MethodSet,
    /// Parameters of the shard-local approximate indexes (`r`, `kmax`,
    /// BREAKPOINTS2 construction). The `store` field inside is ignored —
    /// [`ServeConfig::store`] applies to every index the engine builds.
    pub approx: ApproxConfig,
    /// Storage settings (block size, per-file buffer-pool frames) for all
    /// shard-local indexes.
    pub store: StoreConfig,
    /// Entries per shard-local result cache; `0` disables caching.
    pub cache_capacity: usize,
    /// When set, every shard sleeps this long per block *read* its index
    /// performs — emulating an IO-bound storage device so that serving
    /// experiments measure the paper's cost unit (block IOs) as wall time.
    /// `None` (the default) measures raw in-memory speed.
    pub simulated_read_latency: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            methods: MethodSet::default(),
            approx: ApproxConfig::default(),
            store: StoreConfig::default(),
            cache_capacity: 1024,
            simulated_read_latency: None,
        }
    }
}
