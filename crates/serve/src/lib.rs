//! # chronorank-serve — sharded, cost-routed query serving with result caching
//!
//! The paper's evaluation (§5) is about answering aggregate top-k queries
//! over large temporal data (`m ≈ 1.5M`, `N = 10⁸`); this crate is the
//! layer that serves a *stream* of such queries: a [`ServeEngine`] that
//!
//! 1. **shards** a [`TemporalSet`] into `W` partitions (round-robin by
//!    object id), builds every partition's indexes concurrently, and
//!    publishes each as an immutable `Arc<Shard>` **snapshot** — the
//!    storage layer is `Send + Sync`, so built indexes are shared, not
//!    duplicated. A pool of worker threads answers every query's per-shard
//!    parts in parallel (any worker serves any shard) and the shard-local
//!    top-k lists are k-way merged (exact: because shards partition the
//!    objects, the global top-k is a subset of the union of shard
//!    top-k's). All query methods take `&self`, so whole engines are
//!    themselves shareable across caller threads;
//! 2. **routes** each query with a cost-based [`Planner`] built on
//!    [`chronorank_core::cost_model`] (the paper's Figure-3 table as
//!    executable formulas). Per query `(t1, t2, k, tolerance)` it picks:
//!
//!    | tolerance | route | paper cost (Fig. 3) |
//!    |-----------|-------|---------------------|
//!    | exact, short interval | EXACT1 (§2) | `O(log_B N + Σ qᵢ/B)` |
//!    | exact, otherwise | EXACT3 (§2) | `O(log_B N + m/B)` |
//!    | `ε`-budget, `α = 1` ranks | APPX1 (§3.2) | `O(k/B + log_B r)` |
//!    | `ε`-budget, loose ranks | APPX2 (§3.2) | `O(k log r)` |
//!    | `ε`-budget, tight ranks, no APPX1 | APPX2+ (§3.3) | `O(k log r log_B n)` |
//!
//!    with an exact fallback whenever the budget is unsatisfiable (`ε`
//!    below the achieved breakpoint `ε`, or `k > kmax`);
//! 3. **caches** approximate answers in a shard-local [`LruCache`] keyed
//!    on the *snapped* breakpoint pair `(B(t1), B(t2), k)` — sound
//!    precisely for the routes whose answers depend only on the snapped
//!    interval (APPX1/APPX2; APPX2+ re-scores over the raw interval and is
//!    deliberately not cached) — so hot intervals are answered without
//!    touching any index;
//! 4. **reports** per-route throughput and latency, cache hit rates, and
//!    cross-thread aggregated [`chronorank_storage::IoStats`] snapshots in
//!    a [`ServeReport`].
//!
//! ## Example
//!
//! ```
//! use chronorank_serve::{ServeConfig, ServeEngine, ServeQuery};
//! use chronorank_core::TemporalSet;
//! use chronorank_curve::PiecewiseLinear;
//!
//! let curves: Vec<_> = (0..32)
//!     .map(|i| {
//!         PiecewiseLinear::from_points(&[(0.0, i as f64), (100.0, (32 - i) as f64)]).unwrap()
//!     })
//!     .collect();
//! let set = TemporalSet::from_curves(curves).unwrap();
//! let engine =
//!     ServeEngine::new(&set, ServeConfig { workers: 4, ..Default::default() }).unwrap();
//! // An exact query and an approximate one (ε-budget 5% of total mass).
//! let exact = engine.query(ServeQuery::exact(10.0, 60.0, 5)).unwrap();
//! let appx = engine.query(ServeQuery::approx(10.0, 60.0, 5, 0.05)).unwrap();
//! assert_eq!(exact.len(), 5);
//! assert_eq!(appx.len(), 5);
//! println!("{}", engine.report());
//! ```
//!
//! [`TemporalSet`]: chronorank_core::TemporalSet

pub mod cache;
mod config;
mod engine;
mod obs;
mod planner;
mod query;
mod report;
mod shard;

pub use cache::LruCache;
pub use config::ServeConfig;
pub use engine::{merge_ranked, partition, ServeEngine, ServeError, StreamOutcome};
pub use planner::{
    merge_profiles, Freshness, MethodSet, Planner, PlannerParams, Route, RouteProfiles,
};
pub use query::{ServeQuery, Tolerance};
pub use report::{RouteStats, ServeReport};
pub use shard::{
    assemble_route_methods, build_route_methods, build_route_methods_with_handles, BuiltRoutes,
    Shard,
};

/// Render a `catch_unwind` payload into a readable error message. Shared
/// by every worker-thread layer that converts panics into `Err` replies
/// (this crate's shards, `chronorank-live`'s shards and generation hosts).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}
