//! Engine-level integration: routing, caching, streams, and reporting
//! against generated workloads.

use chronorank_serve::{MethodSet, Route, ServeConfig, ServeEngine, ServeQuery};
use chronorank_workloads::{
    DatasetGenerator, IntervalPattern, QueryWorkload, QueryWorkloadConfig, TempConfig,
    TempGenerator,
};

fn dataset(m: usize) -> chronorank_core::TemporalSet {
    TempGenerator::new(TempConfig { objects: m, avg_segments: 40, seed: 11, dropout: 0.02 })
        .generate_set()
}

fn config(workers: usize) -> ServeConfig {
    ServeConfig { workers, ..Default::default() }
}

#[test]
fn exact_queries_match_bruteforce_at_any_width() {
    let set = dataset(60);
    let (t1, t2) = (set.t_min() + 0.3 * set.span(), set.t_min() + 0.7 * set.span());
    let truth = set.top_k_bruteforce(t1, t2, 8);
    for w in [1usize, 3, 4] {
        let engine = ServeEngine::new(&set, config(w)).unwrap();
        assert_eq!(engine.workers(), w);
        let got = engine.query(ServeQuery::exact(t1, t2, 8)).unwrap();
        assert_eq!(got.ids(), truth.ids(), "W = {w}");
        for (g, t) in got.scores().iter().zip(truth.scores()) {
            assert!((g - t).abs() <= 1e-7 * (1.0 + t.abs()), "W = {w}");
        }
    }
}

#[test]
fn worker_count_is_clamped_to_objects() {
    let set = dataset(3);
    let engine = ServeEngine::new(&set, config(16)).unwrap();
    assert_eq!(engine.workers(), 3);
}

#[test]
fn repeated_hot_queries_hit_the_cache() {
    let set = dataset(50);
    let engine = ServeEngine::new(&set, config(2)).unwrap();
    let (t1, t2) = (set.t_min() + 0.2 * set.span(), set.t_min() + 0.5 * set.span());
    let q = ServeQuery::approx(t1, t2, 6, 0.2);
    assert_eq!(engine.route_for(&q), Route::Appx2);
    let first = engine.query(q).unwrap();
    let before = engine.report();
    assert_eq!(before.cache_hits, 0, "first touch must miss");
    let second = engine.query(q).unwrap();
    let after = engine.report();
    // One lookup per shard per query; the second query hits on both shards.
    assert_eq!(after.cache_lookups, 4);
    assert_eq!(after.cache_hits, 2);
    // Cached answers are identical to the uncached ones, bit for bit.
    assert_eq!(first.entries(), second.entries());
}

#[test]
fn snapped_neighbours_share_a_cache_entry() {
    let set = dataset(50);
    let engine = ServeEngine::new(&set, config(1)).unwrap();
    let (t1, t2) = (set.t_min() + 0.31 * set.span(), set.t_min() + 0.62 * set.span());
    engine.query(ServeQuery::approx(t1, t2, 5, 0.2)).unwrap();
    // A slightly perturbed interval snaps to the same breakpoint pair (the
    // perturbation is far below the breakpoint spacing), so it must hit.
    let nudge = set.span() * 1e-9;
    engine.query(ServeQuery::approx(t1 - nudge, t2 - nudge, 5, 0.2)).unwrap();
    assert_eq!(engine.report().cache_hits, 1);
}

#[test]
fn stream_matches_one_by_one_queries() {
    let set = dataset(40);
    let qs: Vec<ServeQuery> = QueryWorkload::new(
        QueryWorkloadConfig { count: 12, span_fraction: 0.3, k: 5, seed: 3, ..Default::default() },
        set.t_min(),
        set.t_max(),
    )
    .generate()
    .iter()
    .map(|q| ServeQuery::exact(q.t1, q.t2, q.k))
    .collect();
    // A tiny pool forces evictions so the IO aggregation has traffic to see.
    let cfg = ServeConfig {
        workers: 4,
        store: chronorank_storage::StoreConfig { block_size: 4096, pool_capacity: 8 },
        ..Default::default()
    };
    let streamed = ServeEngine::new(&set, cfg).unwrap();
    let outcome = streamed.run_stream(&qs).unwrap();
    assert_eq!(outcome.answers.len(), qs.len());
    let serial = ServeEngine::new(&set, config(4)).unwrap();
    for (i, q) in qs.iter().enumerate() {
        let one = serial.query(*q).unwrap();
        assert_eq!(one.entries(), outcome.answers[i].entries(), "query {i}");
    }
    let report = streamed.report();
    assert_eq!(report.queries, qs.len() as u64);
    // With 8-frame pools the shard builds evict constantly, so the
    // cross-thread IO aggregation must show substantial write-back traffic.
    assert!(report.io.total() > 0, "aggregated IoStats must see shard build/query IO");
    assert!(report.qps() > 0.0);
}

#[test]
fn zipf_streams_are_mostly_cache_hits() {
    let set = dataset(80);
    let workload = QueryWorkload::new(
        QueryWorkloadConfig {
            count: 200,
            span_fraction: 0.2,
            k: 8,
            seed: 9,
            pattern: IntervalPattern::Zipf { hotspots: 6, exponent: 1.0, background: 0.1 },
        },
        set.t_min(),
        set.t_max(),
    );
    let qs: Vec<ServeQuery> =
        workload.generate().iter().map(|q| ServeQuery::approx(q.t1, q.t2, q.k, 0.3)).collect();
    let engine = ServeEngine::new(&set, config(2)).unwrap();
    engine.run_stream(&qs).unwrap();
    let report = engine.report();
    assert!(
        report.cache_hit_rate() > 0.5,
        "hot Zipf stream must be cache-dominated, got {:.2}",
        report.cache_hit_rate()
    );
    assert_eq!(report.routes[Route::Appx2.idx()].queries, qs.len() as u64);
}

#[test]
fn unsatisfiable_budgets_are_served_exactly() {
    let set = dataset(40);
    let engine = ServeEngine::new(&set, config(2)).unwrap();
    // ε far below what r = 128 breakpoints achieve on 40 objects.
    let q = ServeQuery::approx(set.t_min(), set.t_min() + 0.4 * set.span(), 5, 1e-12);
    let route = engine.route_for(&q);
    assert!(route.is_exact(), "got {route:?}");
    let truth = set.top_k_bruteforce(q.t1, q.t2, 5);
    assert_eq!(engine.query(q).unwrap().ids(), truth.ids());
}

#[test]
fn k_beyond_kmax_falls_back_to_exact() {
    let set = dataset(70);
    let cfg = ServeConfig {
        workers: 2,
        approx: chronorank_core::ApproxConfig { kmax: 8, ..Default::default() },
        ..Default::default()
    };
    let engine = ServeEngine::new(&set, cfg).unwrap();
    let q = ServeQuery::approx(set.t_min(), set.t_min() + 0.5 * set.span(), 20, 0.3);
    assert!(engine.route_for(&q).is_exact());
    assert_eq!(engine.query(q).unwrap().len(), 20);
}

#[test]
fn disabled_cache_never_reports_lookups() {
    let set = dataset(40);
    let cfg = ServeConfig { workers: 2, cache_capacity: 0, ..Default::default() };
    let engine = ServeEngine::new(&set, cfg).unwrap();
    let q = ServeQuery::approx(set.t_min(), set.t_min() + 0.4 * set.span(), 5, 0.3);
    engine.query(q).unwrap();
    engine.query(q).unwrap();
    let report = engine.report();
    assert_eq!((report.cache_lookups, report.cache_hits), (0, 0));
}

#[test]
fn latency_toggle_slows_and_restores_io_bound_queries() {
    let set =
        TempGenerator::new(TempConfig { objects: 200, avg_segments: 60, seed: 11, dropout: 0.02 })
            .generate_set();
    // A single-frame pool guarantees every exact probe misses (reads > 0)
    // — the bulk-loaded trees are compact enough that a few frames would
    // cache a repeated stab — so the emulated device latency must dominate
    // once on.
    let cfg = ServeConfig {
        workers: 2,
        store: chronorank_storage::StoreConfig { block_size: 4096, pool_capacity: 1 },
        ..Default::default()
    };
    let engine = ServeEngine::new(&set, cfg).unwrap();
    let q = ServeQuery::exact(set.t_min() + 0.1 * set.span(), set.t_min() + 0.6 * set.span(), 5);
    let fast = engine.query(q).unwrap();
    engine.set_simulated_read_latency(Some(std::time::Duration::from_millis(4))).unwrap();
    let before_reads = engine.report().io.reads;
    let t0 = std::time::Instant::now();
    let slow = engine.query(q).unwrap();
    let with_latency = t0.elapsed();
    assert_eq!(fast.entries(), slow.entries(), "device model must not change answers");
    assert!(engine.report().io.reads > before_reads, "the probe must actually miss");
    assert!(with_latency.as_millis() >= 4, "at least one emulated read must have slept");
    engine.set_simulated_read_latency(None).unwrap();
    let t0 = std::time::Instant::now();
    engine.query(q).unwrap();
    assert!(t0.elapsed() < with_latency, "toggling back off must remove the sleeps");
}

#[test]
fn build_failures_surface_instead_of_hanging() {
    let set = dataset(20);
    // kmax = 0 is rejected by the QUERY2 builder inside every worker; the
    // handshake must deliver the error (and not deadlock on W > 1).
    let cfg = ServeConfig {
        workers: 4,
        approx: chronorank_core::ApproxConfig { kmax: 0, ..Default::default() },
        ..Default::default()
    };
    match ServeEngine::new(&set, cfg) {
        Err(chronorank_serve::ServeError::Build { message, .. }) => {
            assert!(message.contains("kmax"), "unexpected message: {message}");
        }
        Err(other) => panic!("expected a build error, got {other}"),
        Ok(_) => panic!("expected a build error, engine built fine"),
    }
}

#[test]
fn methods_can_be_trimmed_to_exact3_only() {
    let set = dataset(30);
    let cfg = ServeConfig {
        workers: 2,
        methods: MethodSet { exact1: false, appx1: false, appx2: false, appx2_plus: false },
        ..Default::default()
    };
    let engine = ServeEngine::new(&set, cfg).unwrap();
    // Approximate tolerance cannot be honoured: exact fallback.
    let q = ServeQuery::approx(set.t_min(), set.t_min() + 0.3 * set.span(), 4, 0.5);
    assert_eq!(engine.route_for(&q), Route::Exact3);
    assert_eq!(engine.query(q).unwrap().len(), 4);
}

#[test]
fn engine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServeEngine>();
    assert_send_sync::<std::sync::Arc<chronorank_serve::Shard>>();
}

#[test]
fn concurrent_callers_share_one_engine() {
    // The network tier's engine workers do exactly this: many threads
    // querying one ServeEngine through a shared reference. Every thread
    // must see answers bit-identical to a serial oracle.
    let set = dataset(60);
    let engine = ServeEngine::new(&set, config(4)).unwrap();
    let qs: Vec<ServeQuery> = (0..12)
        .map(|i| {
            let a = set.t_min() + (0.05 + 0.03 * i as f64) * set.span();
            ServeQuery::exact(a, a + 0.25 * set.span(), 6)
        })
        .collect();
    let want: Vec<_> = qs.iter().map(|q| engine.query(*q).unwrap()).collect();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let (engine, qs, want) = (&engine, &qs, &want);
            scope.spawn(move || {
                for round in 0..5 {
                    let i = (t + round * 3) % qs.len();
                    let got = engine.query(qs[i]).unwrap();
                    assert_eq!(got.entries(), want[i].entries(), "thread {t} query {i}");
                }
            });
        }
    });
    assert_eq!(engine.report().queries, 12 + 4 * 5);
}

#[test]
fn engines_over_shared_shards_answer_identically() {
    // The parallel-speedup bench shape: build the partitions ONCE, then
    // serve the same Arc<Shard> snapshots from pools of different sizes.
    let set = dataset(60);
    let base = ServeEngine::new(&set, config(4)).unwrap();
    let shards = base.shards();
    let q = ServeQuery::exact(set.t_min() + 0.2 * set.span(), set.t_min() + 0.7 * set.span(), 7);
    let want = base.query(q).unwrap();
    for pool_workers in [1usize, 2, 8] {
        let engine = ServeEngine::from_shards(shards.clone(), pool_workers).unwrap();
        assert_eq!(engine.workers(), 4, "shard count is independent of the pool size");
        let got = engine.query(q).unwrap();
        assert_eq!(got.ids(), want.ids(), "pool = {pool_workers}");
        for (a, b) in got.scores().iter().zip(want.scores()) {
            assert_eq!(a.to_bits(), b.to_bits(), "pool = {pool_workers}");
        }
    }
}
