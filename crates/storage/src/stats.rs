//! IO accounting.
//!
//! Every transfer of a block between a buffer pool and its backing device is
//! counted here. The paper's evaluation reports exactly this quantity
//! ("I/Os") for every method, so the counters are designed to be *shared*:
//! an [`crate::Env`] hands the same counter to every file it creates, and an
//! index structure built from several files (EXACT2 uses `m` of them) still
//! reports one total.
//!
//! Counters are lock-free and cross-thread: an [`IoCounter`] is an `Arc` of
//! atomics, so any number of worker threads can charge IOs to one shared
//! budget without synchronizing, and a coordinator can snapshot totals at
//! any time. Relaxed ordering is enough — the counters are statistics, not
//! synchronization; publication of the *structures* that do the IO happens
//! through channels, `Arc`s and locks elsewhere.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Per-thread tally of block reads charged through ANY [`IoCounter`]
    /// on this thread. Lets a caller measure exactly the reads *its own*
    /// probe performed even while other threads charge the same shared
    /// counter (see [`IoCounter::thread_reads`]).
    static THREAD_READS: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of IO activity.
///
/// Index traffic (`reads`/`writes`, moved by buffer pools) and write-ahead
///-log traffic (`wal_writes`/`wal_bytes`, appended by
/// [`crate::WriteAheadLog`]) are counted separately so a bench can
/// attribute cost to the query path vs the ingest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Blocks fetched from the device into a pool (cache misses).
    pub reads: u64,
    /// Blocks written back from a pool to the device (evictions + flushes).
    pub writes: u64,
    /// Blocks flushed by a write-ahead log (ingest-path durability).
    pub wal_writes: u64,
    /// Payload bytes appended to a write-ahead log (before block rounding).
    pub wal_bytes: u64,
}

impl IoStats {
    /// Total block transfers in either direction, WAL included.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.wal_writes
    }

    /// Component-wise difference, saturating at zero: `self - earlier`.
    pub fn since(&self, earlier: IoStats) -> IoStats {
        IoStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            wal_writes: self.wal_writes.saturating_sub(earlier.wal_writes),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
        }
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            wal_writes: self.wal_writes + rhs.wal_writes,
            wal_bytes: self.wal_bytes + rhs.wal_bytes,
        }
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.wal_writes += rhs.wal_writes;
        self.wal_bytes += rhs.wal_bytes;
    }
}

impl std::iter::Sum for IoStats {
    fn sum<I: Iterator<Item = IoStats>>(iter: I) -> IoStats {
        iter.fold(IoStats::default(), |acc, s| acc + s)
    }
}

impl<'a> std::iter::Sum<&'a IoStats> for IoStats {
    fn sum<I: Iterator<Item = &'a IoStats>>(iter: I) -> IoStats {
        iter.copied().sum()
    }
}

/// The shared atomic cells behind an [`IoCounter`].
#[derive(Debug, Default)]
struct Cells {
    reads: AtomicU64,
    writes: AtomicU64,
    wal_writes: AtomicU64,
    wal_bytes: AtomicU64,
}

/// A cheaply clonable, shared, **thread-safe** IO counter
/// (`Arc`-of-atomics; adds are lock-free, `Relaxed`).
#[derive(Debug, Clone, Default)]
pub struct IoCounter {
    inner: Arc<Cells>,
}

impl IoCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` block reads.
    pub fn add_reads(&self, n: u64) {
        self.inner.reads.fetch_add(n, Ordering::Relaxed);
        THREAD_READS.with(|c| c.set(c.get() + n));
    }

    /// Block reads charged by the **current thread** (across all
    /// counters) since thread start. Shared counters make per-caller
    /// deltas ambiguous under concurrency; a synchronous caller can
    /// instead difference this around an operation to get exactly its
    /// own read count — deterministic no matter what other threads do.
    pub fn thread_reads() -> u64 {
        THREAD_READS.with(Cell::get)
    }

    /// Record `n` block writes.
    pub fn add_writes(&self, n: u64) {
        self.inner.writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one WAL block flush carrying `bytes` of fresh payload.
    pub fn add_wal_write(&self, bytes: u64) {
        self.inner.wal_writes.fetch_add(1, Ordering::Relaxed);
        self.inner.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Current totals. Each field is read atomically; a snapshot taken
    /// while other threads are counting is a consistent point between
    /// whole increments per field, not across fields.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
            wal_writes: self.inner.wal_writes.load(Ordering::Relaxed),
            wal_bytes: self.inner.wal_bytes.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.inner.reads.store(0, Ordering::Relaxed);
        self.inner.writes.store(0, Ordering::Relaxed);
        self.inner.wal_writes.store(0, Ordering::Relaxed);
        self.inner.wal_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io(reads: u64, writes: u64) -> IoStats {
        IoStats { reads, writes, ..Default::default() }
    }

    #[test]
    fn counters_are_shared_between_clones() {
        let a = IoCounter::new();
        let b = a.clone();
        a.add_reads(3);
        b.add_writes(2);
        assert_eq!(a.snapshot(), io(3, 2));
        assert_eq!(b.snapshot().total(), 5);
    }

    #[test]
    fn since_subtracts_and_saturates() {
        let early = io(5, 1);
        let late = io(9, 4);
        assert_eq!(late.since(early), io(4, 3));
        assert_eq!(early.since(late), IoStats::default());
    }

    #[test]
    fn since_saturates_across_a_counter_reset() {
        // Regression: a snapshot taken before a reset is "later" than one
        // taken after it. Differencing them must clamp to zero per
        // component — a raw subtraction would wrap to ~u64::MAX and any
        // consumer (report deltas, wire bodies) would publish garbage.
        let c = IoCounter::new();
        c.add_reads(10);
        c.add_writes(4);
        c.add_wal_write(64);
        let before = c.snapshot();
        c.reset();
        c.add_reads(2);
        let after = c.snapshot();
        assert_eq!(after.since(before), io(0, 0), "reset shrank every counter");
        assert_eq!(after.since(IoStats::default()), after);
    }

    #[test]
    fn reset_zeroes() {
        let c = IoCounter::new();
        c.add_reads(10);
        c.add_wal_write(100);
        c.reset();
        assert_eq!(c.snapshot(), IoStats::default());
    }

    #[test]
    fn add_combines() {
        let a = io(1, 2);
        let b = io(3, 4);
        assert_eq!(a + b, io(4, 6));
        let mut c = a;
        c += b;
        assert_eq!(c, io(4, 6));
    }

    #[test]
    fn sum_aggregates_shard_snapshots() {
        // The serve layer sums one snapshot per shard into a report total.
        let shards = [io(5, 1), IoStats::default(), io(2, 7)];
        let by_value: IoStats = shards.iter().copied().sum();
        let by_ref: IoStats = shards.iter().sum();
        assert_eq!(by_value, io(7, 8));
        assert_eq!(by_ref, by_value);
        assert_eq!(std::iter::empty::<IoStats>().sum::<IoStats>(), IoStats::default());
    }

    #[test]
    fn wal_traffic_is_counted_separately_from_index_traffic() {
        let c = IoCounter::new();
        c.add_reads(2);
        c.add_wal_write(48);
        c.add_wal_write(16);
        let s = c.snapshot();
        assert_eq!((s.reads, s.writes), (2, 0), "WAL flushes must not pollute index writes");
        assert_eq!((s.wal_writes, s.wal_bytes), (2, 64));
        assert_eq!(s.total(), 4);
        // The new fields ride through the arithmetic helpers.
        let twice = s + s;
        assert_eq!((twice.wal_writes, twice.wal_bytes), (4, 128));
        assert_eq!(twice.since(s), s);
        let summed: IoStats = [s, s, IoStats::default()].iter().sum();
        assert_eq!(summed, twice);
    }

    #[test]
    fn concurrent_adds_from_eight_threads_never_lose_increments() {
        let c = IoCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..5_000 {
                        c.add_reads(1);
                        c.add_writes(2);
                        c.add_wal_write(3);
                    }
                });
            }
        });
        let s = c.snapshot();
        assert_eq!(s.reads, 8 * 5_000);
        assert_eq!(s.writes, 2 * 8 * 5_000);
        assert_eq!(s.wal_writes, 8 * 5_000);
        assert_eq!(s.wal_bytes, 3 * 8 * 5_000);
    }

    #[test]
    fn thread_reads_attributes_exactly_to_the_calling_thread() {
        let shared = IoCounter::new();
        std::thread::scope(|scope| {
            for mine in [3u64, 7, 11] {
                let shared = shared.clone();
                scope.spawn(move || {
                    let before = IoCounter::thread_reads();
                    for _ in 0..mine {
                        shared.add_reads(1);
                    }
                    assert_eq!(IoCounter::thread_reads() - before, mine);
                });
            }
        });
        assert_eq!(shared.snapshot().reads, 3 + 7 + 11);
    }

    #[test]
    fn counter_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IoCounter>();
        assert_send_sync::<IoStats>();
    }
}
