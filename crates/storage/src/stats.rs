//! IO accounting.
//!
//! Every transfer of a block between a buffer pool and its backing device is
//! counted here. The paper's evaluation reports exactly this quantity
//! ("I/Os") for every method, so the counters are designed to be *shared*:
//! an [`crate::Env`] hands the same counter to every file it creates, and an
//! index structure built from several files (EXACT2 uses `m` of them) still
//! reports one total.

use std::cell::Cell;
use std::rc::Rc;

/// A snapshot of IO activity.
///
/// Index traffic (`reads`/`writes`, moved by buffer pools) and write-ahead
///-log traffic (`wal_writes`/`wal_bytes`, appended by
/// [`crate::WriteAheadLog`]) are counted separately so a bench can
/// attribute cost to the query path vs the ingest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Blocks fetched from the device into a pool (cache misses).
    pub reads: u64,
    /// Blocks written back from a pool to the device (evictions + flushes).
    pub writes: u64,
    /// Blocks flushed by a write-ahead log (ingest-path durability).
    pub wal_writes: u64,
    /// Payload bytes appended to a write-ahead log (before block rounding).
    pub wal_bytes: u64,
}

impl IoStats {
    /// Total block transfers in either direction, WAL included.
    pub fn total(&self) -> u64 {
        self.reads + self.writes + self.wal_writes
    }

    /// Component-wise difference, saturating at zero: `self - earlier`.
    pub fn since(&self, earlier: IoStats) -> IoStats {
        IoStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            wal_writes: self.wal_writes.saturating_sub(earlier.wal_writes),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
        }
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            wal_writes: self.wal_writes + rhs.wal_writes,
            wal_bytes: self.wal_bytes + rhs.wal_bytes,
        }
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
        self.wal_writes += rhs.wal_writes;
        self.wal_bytes += rhs.wal_bytes;
    }
}

impl std::iter::Sum for IoStats {
    fn sum<I: Iterator<Item = IoStats>>(iter: I) -> IoStats {
        iter.fold(IoStats::default(), |acc, s| acc + s)
    }
}

impl<'a> std::iter::Sum<&'a IoStats> for IoStats {
    fn sum<I: Iterator<Item = &'a IoStats>>(iter: I) -> IoStats {
        iter.copied().sum()
    }
}

/// A cheaply clonable, shared IO counter (single-threaded: `Rc<Cell<_>>`).
#[derive(Debug, Clone, Default)]
pub struct IoCounter {
    inner: Rc<Cell<IoStats>>,
}

impl IoCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` block reads.
    pub fn add_reads(&self, n: u64) {
        let mut s = self.inner.get();
        s.reads += n;
        self.inner.set(s);
    }

    /// Record `n` block writes.
    pub fn add_writes(&self, n: u64) {
        let mut s = self.inner.get();
        s.writes += n;
        self.inner.set(s);
    }

    /// Record one WAL block flush carrying `bytes` of fresh payload.
    pub fn add_wal_write(&self, bytes: u64) {
        let mut s = self.inner.get();
        s.wal_writes += 1;
        s.wal_bytes += bytes;
        self.inner.set(s);
    }

    /// Current totals.
    pub fn snapshot(&self) -> IoStats {
        self.inner.get()
    }

    /// Reset both counters to zero.
    pub fn reset(&self) {
        self.inner.set(IoStats::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io(reads: u64, writes: u64) -> IoStats {
        IoStats { reads, writes, ..Default::default() }
    }

    #[test]
    fn counters_are_shared_between_clones() {
        let a = IoCounter::new();
        let b = a.clone();
        a.add_reads(3);
        b.add_writes(2);
        assert_eq!(a.snapshot(), io(3, 2));
        assert_eq!(b.snapshot().total(), 5);
    }

    #[test]
    fn since_subtracts_and_saturates() {
        let early = io(5, 1);
        let late = io(9, 4);
        assert_eq!(late.since(early), io(4, 3));
        assert_eq!(early.since(late), IoStats::default());
    }

    #[test]
    fn reset_zeroes() {
        let c = IoCounter::new();
        c.add_reads(10);
        c.add_wal_write(100);
        c.reset();
        assert_eq!(c.snapshot(), IoStats::default());
    }

    #[test]
    fn add_combines() {
        let a = io(1, 2);
        let b = io(3, 4);
        assert_eq!(a + b, io(4, 6));
        let mut c = a;
        c += b;
        assert_eq!(c, io(4, 6));
    }

    #[test]
    fn sum_aggregates_shard_snapshots() {
        // The serve layer sums one snapshot per shard into a report total.
        let shards = [io(5, 1), IoStats::default(), io(2, 7)];
        let by_value: IoStats = shards.iter().copied().sum();
        let by_ref: IoStats = shards.iter().sum();
        assert_eq!(by_value, io(7, 8));
        assert_eq!(by_ref, by_value);
        assert_eq!(std::iter::empty::<IoStats>().sum::<IoStats>(), IoStats::default());
    }

    #[test]
    fn wal_traffic_is_counted_separately_from_index_traffic() {
        let c = IoCounter::new();
        c.add_reads(2);
        c.add_wal_write(48);
        c.add_wal_write(16);
        let s = c.snapshot();
        assert_eq!((s.reads, s.writes), (2, 0), "WAL flushes must not pollute index writes");
        assert_eq!((s.wal_writes, s.wal_bytes), (2, 64));
        assert_eq!(s.total(), 4);
        // The new fields ride through the arithmetic helpers.
        let twice = s + s;
        assert_eq!((twice.wal_writes, twice.wal_bytes), (4, 128));
        assert_eq!(twice.since(s), s);
        let summed: IoStats = [s, s, IoStats::default()].iter().sum();
        assert_eq!(summed, twice);
    }
}
