//! IO accounting.
//!
//! Every transfer of a block between a buffer pool and its backing device is
//! counted here. The paper's evaluation reports exactly this quantity
//! ("I/Os") for every method, so the counters are designed to be *shared*:
//! an [`crate::Env`] hands the same counter to every file it creates, and an
//! index structure built from several files (EXACT2 uses `m` of them) still
//! reports one total.

use std::cell::Cell;
use std::rc::Rc;

/// A snapshot of IO activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Blocks fetched from the device into a pool (cache misses).
    pub reads: u64,
    /// Blocks written back from a pool to the device (evictions + flushes).
    pub writes: u64,
}

impl IoStats {
    /// Total block transfers in either direction.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference, saturating at zero: `self - earlier`.
    pub fn since(&self, earlier: IoStats) -> IoStats {
        IoStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
        }
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats { reads: self.reads + rhs.reads, writes: self.writes + rhs.writes }
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
    }
}

impl std::iter::Sum for IoStats {
    fn sum<I: Iterator<Item = IoStats>>(iter: I) -> IoStats {
        iter.fold(IoStats::default(), |acc, s| acc + s)
    }
}

impl<'a> std::iter::Sum<&'a IoStats> for IoStats {
    fn sum<I: Iterator<Item = &'a IoStats>>(iter: I) -> IoStats {
        iter.copied().sum()
    }
}

/// A cheaply clonable, shared IO counter (single-threaded: `Rc<Cell<_>>`).
#[derive(Debug, Clone, Default)]
pub struct IoCounter {
    inner: Rc<Cell<IoStats>>,
}

impl IoCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` block reads.
    pub fn add_reads(&self, n: u64) {
        let mut s = self.inner.get();
        s.reads += n;
        self.inner.set(s);
    }

    /// Record `n` block writes.
    pub fn add_writes(&self, n: u64) {
        let mut s = self.inner.get();
        s.writes += n;
        self.inner.set(s);
    }

    /// Current totals.
    pub fn snapshot(&self) -> IoStats {
        self.inner.get()
    }

    /// Reset both counters to zero.
    pub fn reset(&self) {
        self.inner.set(IoStats::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_between_clones() {
        let a = IoCounter::new();
        let b = a.clone();
        a.add_reads(3);
        b.add_writes(2);
        assert_eq!(a.snapshot(), IoStats { reads: 3, writes: 2 });
        assert_eq!(b.snapshot().total(), 5);
    }

    #[test]
    fn since_subtracts_and_saturates() {
        let early = IoStats { reads: 5, writes: 1 };
        let late = IoStats { reads: 9, writes: 4 };
        assert_eq!(late.since(early), IoStats { reads: 4, writes: 3 });
        assert_eq!(early.since(late), IoStats::default());
    }

    #[test]
    fn reset_zeroes() {
        let c = IoCounter::new();
        c.add_reads(10);
        c.reset();
        assert_eq!(c.snapshot(), IoStats::default());
    }

    #[test]
    fn add_combines() {
        let a = IoStats { reads: 1, writes: 2 };
        let b = IoStats { reads: 3, writes: 4 };
        assert_eq!(a + b, IoStats { reads: 4, writes: 6 });
        let mut c = a;
        c += b;
        assert_eq!(c, IoStats { reads: 4, writes: 6 });
    }

    #[test]
    fn sum_aggregates_shard_snapshots() {
        // The serve layer sums one snapshot per shard into a report total.
        let shards =
            [IoStats { reads: 5, writes: 1 }, IoStats::default(), IoStats { reads: 2, writes: 7 }];
        let by_value: IoStats = shards.iter().copied().sum();
        let by_ref: IoStats = shards.iter().sum();
        assert_eq!(by_value, IoStats { reads: 7, writes: 8 });
        assert_eq!(by_ref, by_value);
        assert_eq!(std::iter::empty::<IoStats>().sum::<IoStats>(), IoStats::default());
    }
}
