//! Storage environments: factories for [`PagedFile`]s that share one IO
//! counter and one configuration.
//!
//! An index structure in this workspace opens all of its files from a single
//! [`Env`]; the environment's counter then reports the structure's total IO,
//! mirroring how the paper charges all block transfers of a method to one
//! budget.
//!
//! `Env` is `Send + Sync`: the name registry sits behind a [`Mutex`] and the
//! child counter is atomic, so concurrent builders (parallel shard builds,
//! generation hosts) can open files and spawn sub-environments from one
//! shared environment without racing the namespace bookkeeping.

use crate::device::{FileDevice, MemDevice};
use crate::error::{Result, StorageError};
use crate::pool::{PagedFile, StoreConfig};
use crate::stats::{IoCounter, IoStats};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Where an [`Env`] places its files.
#[derive(Debug, Clone)]
pub enum EnvBacking {
    /// Everything in RAM ([`MemDevice`]); IO counting is identical to disk.
    Memory,
    /// One OS file per logical file inside this directory.
    Directory(PathBuf),
}

/// A factory for [`PagedFile`]s sharing one [`IoCounter`].
pub struct Env {
    backing: EnvBacking,
    config: StoreConfig,
    counter: IoCounter,
    names: Mutex<HashSet<String>>,
    /// Name prefix (used by [`Env::child`] to give sub-environments their
    /// own namespace while sharing the counter).
    prefix: String,
    children: AtomicU32,
}

impl Env {
    /// An in-memory environment (the default for tests and benchmarks).
    pub fn mem(config: StoreConfig) -> Self {
        Self {
            backing: EnvBacking::Memory,
            config,
            counter: IoCounter::new(),
            names: Mutex::new(HashSet::new()),
            prefix: String::new(),
            children: AtomicU32::new(0),
        }
    }

    /// A directory-backed environment; the directory is created if missing.
    pub fn dir(path: impl Into<PathBuf>, config: StoreConfig) -> Result<Self> {
        let path = path.into();
        std::fs::create_dir_all(&path)?;
        Ok(Self {
            backing: EnvBacking::Directory(path),
            config,
            counter: IoCounter::new(),
            names: Mutex::new(HashSet::new()),
            prefix: String::new(),
            children: AtomicU32::new(0),
        })
    }

    /// A sub-environment with its own file namespace but **sharing this
    /// environment's IO counter** — used by composite indexes (e.g. APPX2+
    /// combines QUERY2 with an EXACT2 forest and reports one IO total).
    /// Concurrent callers get distinct namespaces: the child ordinal is a
    /// single atomic increment.
    pub fn child(&self) -> Env {
        let n = self.children.fetch_add(1, Ordering::Relaxed);
        Env {
            backing: self.backing.clone(),
            config: self.config,
            counter: self.counter.clone(),
            names: Mutex::new(HashSet::new()),
            prefix: format!("{}c{n}_", self.prefix),
            children: AtomicU32::new(0),
        }
    }

    /// The environment's block size.
    pub fn block_size(&self) -> usize {
        self.config.block_size
    }

    /// The environment's configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Create a new logical file. Names must be unique within the
    /// environment; the check-and-insert is atomic under the registry
    /// lock, so two threads racing on one name see exactly one winner.
    pub fn create_file(&self, name: &str) -> Result<PagedFile> {
        {
            let mut names = self.names.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !names.insert(name.to_string()) {
                return Err(StorageError::DuplicateFile(name.to_string()));
            }
        }
        let device: Box<dyn crate::BlockDevice> = match &self.backing {
            EnvBacking::Memory => Box::new(MemDevice::new(self.config.block_size)),
            EnvBacking::Directory(dir) => {
                let path = dir.join(sanitize(&format!("{}{name}", self.prefix)));
                Box::new(FileDevice::create(&path, self.config.block_size)?)
            }
        };
        Ok(PagedFile::new(device, self.config, self.counter.clone()))
    }

    /// The shared counter.
    pub fn io(&self) -> IoCounter {
        self.counter.clone()
    }

    /// Snapshot of the shared counter.
    pub fn io_stats(&self) -> IoStats {
        self.counter.snapshot()
    }

    /// Zero the shared counter.
    pub fn reset_io(&self) {
        self.counter.reset()
    }
}

/// Keep file names filesystem-safe.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(
            |c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' { c } else { '_' },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_share_the_environment_counter() {
        let env = Env::mem(StoreConfig { block_size: 128, pool_capacity: 2 });
        let a = env.create_file("a").unwrap();
        let b = env.create_file("b").unwrap();
        let ia = a.allocate(1).unwrap();
        let ib = b.allocate(1).unwrap();
        a.write(ia, &[1u8; 128]).unwrap();
        b.write(ib, &[2u8; 128]).unwrap();
        a.drop_cache().unwrap();
        b.drop_cache().unwrap();
        let mut buf = vec![0u8; 128];
        a.read(ia, &mut buf).unwrap();
        b.read(ib, &mut buf).unwrap();
        let s = env.io_stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let env = Env::mem(StoreConfig::default());
        env.create_file("x").unwrap();
        assert!(matches!(env.create_file("x"), Err(StorageError::DuplicateFile(_))));
    }

    #[test]
    fn dir_backed_env_round_trips() {
        let dir = std::env::temp_dir().join(format!("chronorank-env-{}", std::process::id()));
        let env = Env::dir(&dir, StoreConfig { block_size: 256, pool_capacity: 2 }).unwrap();
        let f = env.create_file("weird/name with spaces").unwrap();
        let id = f.allocate(1).unwrap();
        f.write(id, &vec![9u8; 256]).unwrap();
        f.flush().unwrap();
        let mut buf = vec![0u8; 256];
        f.drop_cache().unwrap();
        f.read(id, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_io_zeroes_shared_counter() {
        let env = Env::mem(StoreConfig { block_size: 128, pool_capacity: 2 });
        let f = env.create_file("f").unwrap();
        let id = f.allocate(1).unwrap();
        f.write(id, &[0u8; 128]).unwrap();
        f.flush().unwrap();
        assert!(env.io_stats().writes > 0);
        env.reset_io();
        assert_eq!(env.io_stats(), IoStats::default());
    }

    #[test]
    fn env_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Env>();
    }

    #[test]
    fn concurrent_create_file_and_child_never_collide() {
        // Regression for the pre-refactor `RefCell<HashSet>` / `Cell<u32>`
        // bookkeeping: 8 threads hammer one shared Env with unique names,
        // one contended duplicate name, and child() spawns. Exactly one
        // thread may win the duplicate; child prefixes must all differ.
        let env = Env::mem(StoreConfig { block_size: 128, pool_capacity: 2 });
        let dup_wins = std::sync::atomic::AtomicU32::new(0);
        let prefixes = Mutex::new(HashSet::new());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let env = &env;
                let dup_wins = &dup_wins;
                let prefixes = &prefixes;
                scope.spawn(move || {
                    for i in 0..50 {
                        env.create_file(&format!("t{t}_f{i}")).unwrap();
                        let child = env.child();
                        // Children share the counter but not the namespace.
                        child.create_file("same-name-every-child").unwrap();
                        assert!(prefixes.lock().unwrap().insert(child.prefix.clone()));
                    }
                    if env.create_file("contended").is_ok() {
                        dup_wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(dup_wins.load(Ordering::Relaxed), 1, "exactly one winner for a raced name");
        assert_eq!(prefixes.lock().unwrap().len(), 8 * 50);
        assert_eq!(env.children.load(Ordering::Relaxed), 8 * 50);
    }
}
