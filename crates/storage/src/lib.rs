//! # chronorank-storage — block storage engine
//!
//! The paper ("Ranking Large Temporal Data", VLDB 2012) implements all of its
//! index structures on top of TPIE, an external-memory library that moves
//! data in fixed-size blocks and reports costs in **block IOs**. This crate
//! is the equivalent substrate for the Rust reproduction:
//!
//! * [`BlockDevice`] — a raw array of fixed-size blocks, either in memory
//!   ([`MemDevice`]) or backed by a file ([`FileDevice`]);
//! * [`PagedFile`] — a buffer-pool-cached view of a device with clock
//!   (second-chance) eviction and write-back caching;
//! * [`IoCounter`] / [`IoStats`] — shared counters that record every block
//!   transfer between the pool and the device. These counters are the
//!   quantity reported as "I/Os" in the paper's figures;
//! * [`Env`] — a factory that hands out [`PagedFile`]s sharing one counter,
//!   so a multi-structure index (e.g. EXACT2's forest of B+-trees) has a
//!   single IO budget;
//! * [`ScaleBudget`] — one explicit byte budget (TPIE's single memory
//!   knob, reproduced) from which paper-scale builds derive buffer-pool
//!   capacities and external-sort run lengths;
//! * [`WriteAheadLog`] — a block-device-backed durability log for the
//!   ingest path (CRC'd records, crash replay, truncation on checkpoint),
//!   counted separately as `wal_writes`/`wal_bytes`;
//! * [`ImageWriter`] / [`GenerationImage`] — a versioned, CRC'd container
//!   that persists a frozen index generation (page captures of whole
//!   [`PagedFile`]s plus metadata blobs) so a restart serves it directly
//!   instead of rebuilding.
//!
//! ## Concurrency
//!
//! Every structure here is **thread-safe**: [`IoCounter`] is an `Arc` of
//! atomics (lock-free adds), [`PagedFile`] synchronizes its pool behind an
//! internal mutex so all methods take `&self`, and [`Env`] guards its name
//! registry the same way. A fully built index is therefore an immutable,
//! shareable snapshot — serving layers put one behind an `Arc` and query it
//! from any number of worker threads. [`WriteAheadLog`] takes `&mut self`
//! (a log has exactly one appender); it is `Send`, so the single owner can
//! live on whichever thread ingests.
//!
//! ## Example
//!
//! ```
//! use chronorank_storage::{Env, StoreConfig};
//!
//! let env = Env::mem(StoreConfig::default());
//! let f = env.create_file("data").unwrap();
//! let id = f.allocate(1).unwrap();
//! let mut page = vec![0u8; f.block_size()];
//! page[..4].copy_from_slice(&42u32.to_le_bytes());
//! f.write(id, &page).unwrap();
//! f.flush().unwrap();
//! f.drop_cache().unwrap();
//!
//! let mut out = vec![0u8; f.block_size()];
//! f.read(id, &mut out).unwrap();
//! assert_eq!(&out[..4], &42u32.to_le_bytes());
//! assert!(env.io_stats().reads >= 1);
//! ```

mod budget;
mod device;
mod env;
mod error;
mod image;
pub mod page;
mod pool;
mod stats;
mod wal;

pub use budget::ScaleBudget;
pub use device::{BlockDevice, FileDevice, MemDevice};
pub use env::{Env, EnvBacking};
pub use error::{Result, StorageError};
pub use image::{GenerationImage, ImageWriter};
pub use pool::{PagedFile, StoreConfig};
pub use stats::{IoCounter, IoStats};
pub use wal::{crc32, WriteAheadLog, MAX_RECORD_LEN};

/// Identifier of a block within one [`BlockDevice`] / [`PagedFile`].
pub type PageId = u64;

/// The paper's default block size (TPIE was configured with 4 KB blocks).
pub const DEFAULT_BLOCK_SIZE: usize = 4096;

/// Default number of frames in a buffer pool (4 MB of cache at the default
/// block size — deliberately small so that cold-query IO counts are honest).
pub const DEFAULT_POOL_CAPACITY: usize = 1024;
