//! Generation images: a versioned, CRC'd on-disk container that freezes a
//! built index generation so a restart can serve it without rebuilding.
//!
//! An image is a single file with a fixed header, a sequence of named
//! **sections**, and a CRC'd manifest describing them:
//!
//! ```text
//! header   magic "CRGEN001" | epoch u64 | manifest_off u64
//!          | manifest_len u64 | manifest_crc u32
//! payload  section bytes, back to back, in add order
//! manifest per section: name_len u16 | name | kind u8 | block_size u32
//!          | start u64 | len u64 | crc u32
//! ```
//!
//! Two section kinds exist: **blob** (opaque bytes — serialized metadata,
//! breakpoint tables, curve snapshots) and **paged** (a page-for-page
//! capture of a [`PagedFile`] — a whole B+-tree or interval tree, reopened
//! later without any sort or build pass). Every section carries its own
//! CRC-32, checked on extraction; the manifest carries another, checked at
//! open. The `epoch` field stamps which WAL epoch the image belongs to, so
//! recovery knows exactly which log suffix still needs replaying.
//!
//! Writing is crash-safe by construction: [`ImageWriter`] streams into
//! `<path>.tmp` and [`ImageWriter::finish`] renames it into place only
//! after the header (written last) and all payload bytes are synced. A
//! crash mid-write leaves either the old image or none — never a torn one.

use crate::error::{Result, StorageError};
use crate::pool::{PagedFile, StoreConfig};
use crate::stats::IoCounter;
use crate::wal::crc32;
use crate::{BlockDevice, MemDevice};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CRGEN001";
const HEADER_LEN: u64 = 8 + 8 + 8 + 8 + 4;

const KIND_BLOB: u8 = 0;
const KIND_PAGED: u8 = 1;

#[derive(Debug, Clone)]
struct Section {
    name: String,
    kind: u8,
    /// Block size of the captured [`PagedFile`] (0 for blobs).
    block_size: u32,
    start: u64,
    len: u64,
    crc: u32,
}

/// Streams sections into `<path>.tmp`; [`ImageWriter::finish`] atomically
/// publishes the image at `path`.
pub struct ImageWriter {
    file: File,
    tmp: PathBuf,
    dest: PathBuf,
    offset: u64,
    sections: Vec<Section>,
}

impl ImageWriter {
    /// Start writing an image that will be published at `path`.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self> {
        let dest = path.into();
        let tmp = tmp_path(&dest);
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&tmp)?;
        // Header placeholder; the real header lands in finish().
        file.write_all(&[0u8; HEADER_LEN as usize])?;
        Ok(Self { file, tmp, dest, offset: HEADER_LEN, sections: Vec::new() })
    }

    fn check_name(&self, name: &str) -> Result<()> {
        if name.is_empty() || name.len() > u16::MAX as usize {
            return Err(StorageError::Corrupt(format!("bad image section name {name:?}")));
        }
        if self.sections.iter().any(|s| s.name == name) {
            return Err(StorageError::DuplicateFile(name.to_string()));
        }
        Ok(())
    }

    /// Append an opaque byte section.
    pub fn add_blob(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.check_name(name)?;
        self.file.write_all(bytes)?;
        self.sections.push(Section {
            name: name.to_string(),
            kind: KIND_BLOB,
            block_size: 0,
            start: self.offset,
            len: bytes.len() as u64,
            crc: crc32(0, bytes),
        });
        self.offset += bytes.len() as u64;
        Ok(())
    }

    /// Capture a [`PagedFile`] page for page. Flushes it first so the
    /// device holds every dirty frame; the copy then bypasses the pool
    /// cache via plain block reads.
    pub fn add_paged(&mut self, name: &str, paged: &PagedFile) -> Result<()> {
        self.check_name(name)?;
        paged.flush()?;
        let bs = paged.block_size();
        let blocks = paged.num_blocks();
        let mut buf = vec![0u8; bs];
        let mut crc = 0u32;
        for id in 0..blocks {
            paged.read(id, &mut buf)?;
            self.file.write_all(&buf)?;
            crc = crc32(crc, &buf);
        }
        self.sections.push(Section {
            name: name.to_string(),
            kind: KIND_PAGED,
            block_size: bs as u32,
            start: self.offset,
            len: blocks * bs as u64,
            crc,
        });
        self.offset += blocks * bs as u64;
        Ok(())
    }

    /// Write the manifest and header, sync, and atomically rename the
    /// temporary file into place. `epoch` stamps the WAL epoch this image
    /// belongs to (recovery replays only records from epochs ≥ `epoch`).
    pub fn finish(mut self, epoch: u64) -> Result<()> {
        let mut manifest = Vec::new();
        for s in &self.sections {
            manifest.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
            manifest.extend_from_slice(s.name.as_bytes());
            manifest.push(s.kind);
            manifest.extend_from_slice(&s.block_size.to_le_bytes());
            manifest.extend_from_slice(&s.start.to_le_bytes());
            manifest.extend_from_slice(&s.len.to_le_bytes());
            manifest.extend_from_slice(&s.crc.to_le_bytes());
        }
        self.file.write_all(&manifest)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&epoch.to_le_bytes());
        header.extend_from_slice(&self.offset.to_le_bytes());
        header.extend_from_slice(&(manifest.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(0, &manifest).to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        self.file.sync_data()?;
        std::fs::rename(&self.tmp, &self.dest)?;
        Ok(())
    }
}

/// A validated, read-only generation image.
pub struct GenerationImage {
    file: File,
    epoch: u64,
    sections: Vec<Section>,
}

impl GenerationImage {
    /// Open and validate an image: magic, header sanity, manifest CRC.
    /// Section payloads are CRC-checked lazily on extraction.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let mut file = File::open(path.as_ref())?;
        let file_len = file.metadata()?.len();
        let mut header = [0u8; HEADER_LEN as usize];
        if file_len < HEADER_LEN {
            return Err(StorageError::Corrupt("image shorter than header".into()));
        }
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(StorageError::Corrupt("bad generation image magic".into()));
        }
        let u64_at = |at: usize| u64::from_le_bytes(header[at..at + 8].try_into().expect("8"));
        let epoch = u64_at(8);
        let manifest_off = u64_at(16);
        let manifest_len = u64_at(24);
        let manifest_crc = u32::from_le_bytes(header[32..36].try_into().expect("4"));
        if manifest_off < HEADER_LEN
            || manifest_off.checked_add(manifest_len).is_none_or(|end| end > file_len)
        {
            return Err(StorageError::Corrupt("image manifest out of bounds".into()));
        }
        let mut manifest = vec![0u8; manifest_len as usize];
        file.seek(SeekFrom::Start(manifest_off))?;
        file.read_exact(&mut manifest)?;
        if crc32(0, &manifest) != manifest_crc {
            return Err(StorageError::Corrupt("image manifest CRC mismatch".into()));
        }
        let sections = parse_manifest(&manifest, manifest_off)?;
        Ok(Self { file, epoch, sections })
    }

    /// The WAL epoch stamped at [`ImageWriter::finish`] time.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Names of all sections, in add order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    fn section(&self, name: &str) -> Result<&Section> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| StorageError::Corrupt(format!("image has no section {name:?}")))
    }

    fn payload(&mut self, s: &Section) -> Result<Vec<u8>> {
        let mut bytes = vec![0u8; s.len as usize];
        self.file.seek(SeekFrom::Start(s.start))?;
        self.file.read_exact(&mut bytes)?;
        if crc32(0, &bytes) != s.crc {
            return Err(StorageError::Corrupt(format!("section {:?} CRC mismatch", s.name)));
        }
        Ok(bytes)
    }

    /// Extract a blob section (CRC-checked).
    pub fn blob(&mut self, name: &str) -> Result<Vec<u8>> {
        let s = self.section(name)?.clone();
        if s.kind != KIND_BLOB {
            return Err(StorageError::Corrupt(format!("section {name:?} is not a blob")));
        }
        self.payload(&s)
    }

    /// Reconstruct a captured [`PagedFile`] (CRC-checked): the pages are
    /// loaded into a fresh [`MemDevice`], so the returned file serves
    /// queries immediately with no build pass. IOs charge to `counter`.
    pub fn paged(
        &mut self,
        name: &str,
        pool_capacity: usize,
        counter: IoCounter,
    ) -> Result<PagedFile> {
        let s = self.section(name)?.clone();
        if s.kind != KIND_PAGED {
            return Err(StorageError::Corrupt(format!("section {name:?} is not paged")));
        }
        let bs = s.block_size as usize;
        if bs < 64 || s.len % bs as u64 != 0 {
            return Err(StorageError::Corrupt(format!("section {name:?} has a bad block size")));
        }
        let bytes = self.payload(&s)?;
        let mut dev = MemDevice::new(bs);
        dev.allocate(s.len / bs as u64)?;
        for (id, chunk) in bytes.chunks_exact(bs).enumerate() {
            dev.write(id as u64, chunk)?;
        }
        let config = StoreConfig { block_size: bs, pool_capacity };
        Ok(PagedFile::new(Box::new(dev), config, counter))
    }
}

fn parse_manifest(manifest: &[u8], payload_end: u64) -> Result<Vec<Section>> {
    let corrupt = || StorageError::Corrupt("truncated image manifest".into());
    let mut sections = Vec::new();
    let mut at = 0usize;
    while at < manifest.len() {
        let name_len = u16::from_le_bytes(
            manifest.get(at..at + 2).ok_or_else(corrupt)?.try_into().expect("2"),
        ) as usize;
        at += 2;
        let name = std::str::from_utf8(manifest.get(at..at + name_len).ok_or_else(corrupt)?)
            .map_err(|_| StorageError::Corrupt("non-utf8 image section name".into()))?
            .to_string();
        at += name_len;
        let fixed = manifest.get(at..at + 25).ok_or_else(corrupt)?;
        at += 25;
        let section = Section {
            name,
            kind: fixed[0],
            block_size: u32::from_le_bytes(fixed[1..5].try_into().expect("4")),
            start: u64::from_le_bytes(fixed[5..13].try_into().expect("8")),
            len: u64::from_le_bytes(fixed[13..21].try_into().expect("8")),
            crc: u32::from_le_bytes(fixed[21..25].try_into().expect("4")),
        };
        if section.kind > KIND_PAGED
            || section.start < HEADER_LEN
            || section.start.checked_add(section.len).is_none_or(|end| end > payload_end)
        {
            return Err(StorageError::Corrupt(format!(
                "image section {:?} out of bounds",
                section.name
            )));
        }
        sections.push(section);
    }
    Ok(sections)
}

fn tmp_path(dest: &Path) -> PathBuf {
    let mut name = dest.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    dest.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Env;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chronorank-img-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn chained_crc_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let (a, b) = data.split_at(17);
        assert_eq!(crc32(crc32(0, a), b), crc32(0, data));
    }

    #[test]
    fn blob_and_paged_sections_round_trip() {
        let dir = tmp_dir("rt");
        let path = dir.join("gen.img");

        let env = Env::mem(StoreConfig { block_size: 128, pool_capacity: 4 });
        let f = env.create_file("tree").unwrap();
        let first = f.allocate(5).unwrap();
        for i in 0..5u64 {
            f.write(first + i, &[i as u8 + 1; 128]).unwrap();
        }

        let mut w = ImageWriter::create(&path).unwrap();
        w.add_blob("meta", b"hello metadata").unwrap();
        w.add_paged("tree", &f).unwrap();
        w.add_blob("empty", b"").unwrap();
        w.finish(42).unwrap();
        assert!(!tmp_path(&path).exists(), "tmp file renamed away");

        let mut img = GenerationImage::open(&path).unwrap();
        assert_eq!(img.epoch(), 42);
        assert_eq!(img.section_names(), vec!["meta", "tree", "empty"]);
        assert_eq!(img.blob("meta").unwrap(), b"hello metadata");
        assert_eq!(img.blob("empty").unwrap(), b"");
        let re = img.paged("tree", 4, IoCounter::new()).unwrap();
        assert_eq!(re.block_size(), 128);
        assert_eq!(re.num_blocks(), 5);
        let mut buf = vec![0u8; 128];
        for i in 0..5u64 {
            re.read(i, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == i as u8 + 1), "block {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kind_confusion_and_missing_sections_error() {
        let dir = tmp_dir("kind");
        let path = dir.join("gen.img");
        let mut w = ImageWriter::create(&path).unwrap();
        w.add_blob("meta", b"x").unwrap();
        w.finish(0).unwrap();
        let mut img = GenerationImage::open(&path).unwrap();
        assert!(img.paged("meta", 2, IoCounter::new()).is_err());
        assert!(img.blob("nope").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_section_names_rejected_at_write() {
        let dir = tmp_dir("dup");
        let mut w = ImageWriter::create(dir.join("gen.img")).unwrap();
        w.add_blob("a", b"1").unwrap();
        assert!(matches!(w.add_blob("a", b"2"), Err(StorageError::DuplicateFile(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("gen.img");
        let mut w = ImageWriter::create(&path).unwrap();
        w.add_blob("meta", b"important bytes").unwrap();
        w.finish(7).unwrap();

        // Flip a payload byte: open succeeds (manifest intact) but the
        // section extraction must fail its CRC.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN as usize] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut img = GenerationImage::open(&path).unwrap();
        assert!(matches!(img.blob("meta"), Err(StorageError::Corrupt(_))));

        // Flip a manifest byte: open itself must fail.
        bytes[HEADER_LEN as usize] ^= 0xFF; // restore payload
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(GenerationImage::open(&path), Err(StorageError::Corrupt(_))));

        // Bad magic.
        bytes[last] ^= 0xFF;
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(GenerationImage::open(&path), Err(StorageError::Corrupt(_))));

        // Truncated to less than a header.
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(GenerationImage::open(&path), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unfinished_tmp_file_is_not_an_image() {
        let dir = tmp_dir("unfinished");
        let path = dir.join("gen.img");
        let mut w = ImageWriter::create(&path).unwrap();
        w.add_blob("meta", b"never published").unwrap();
        drop(w); // crash before finish(): no rename, header still zeroed
        assert!(!path.exists());
        assert!(matches!(GenerationImage::open(tmp_path(&path)), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
