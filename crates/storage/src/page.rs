//! Little-endian page codec helpers.
//!
//! All on-disk records in this workspace are fixed-size and little-endian.
//! These helpers centralize the offset arithmetic; each returns the offset
//! just past the value written/read so encoders can be written as chains.

use crate::error::{Result, StorageError};

/// Write a `u32` at `off`, returning the next offset.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) -> usize {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    off + 4
}

/// Read a `u32` at `off`.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
}

/// Write a `u64` at `off`, returning the next offset.
#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) -> usize {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    off + 8
}

/// Read a `u64` at `off`.
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

/// Write an `f64` at `off`, returning the next offset.
#[inline]
pub fn put_f64(buf: &mut [u8], off: usize, v: f64) -> usize {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    off + 8
}

/// Read an `f64` at `off`.
#[inline]
pub fn get_f64(buf: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

/// Validate a page's leading magic number; a mismatch means the caller is
/// decoding the wrong kind of page.
pub fn check_magic(buf: &[u8], magic: u32, what: &str) -> Result<()> {
    let got = get_u32(buf, 0);
    if got != magic {
        return Err(StorageError::Corrupt(format!(
            "{what}: expected magic {magic:#x}, found {got:#x}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut buf = vec![0u8; 64];
        let o = put_u32(&mut buf, 0, 0xDEAD_BEEF);
        let o = put_u64(&mut buf, o, u64::MAX - 3);
        let o = put_f64(&mut buf, o, -1234.5678);
        assert_eq!(o, 4 + 8 + 8);
        assert_eq!(get_u32(&buf, 0), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, 4), u64::MAX - 3);
        assert_eq!(get_f64(&buf, 12), -1234.5678);
    }

    #[test]
    fn f64_preserves_bit_patterns() {
        let mut buf = vec![0u8; 8];
        for v in [f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, f64::MIN_POSITIVE] {
            put_f64(&mut buf, 0, v);
            assert_eq!(get_f64(&buf, 0).to_bits(), v.to_bits());
        }
        put_f64(&mut buf, 0, f64::NAN);
        assert!(get_f64(&buf, 0).is_nan());
    }

    #[test]
    fn magic_check() {
        let mut buf = vec![0u8; 16];
        put_u32(&mut buf, 0, 0xCAFE);
        assert!(check_magic(&buf, 0xCAFE, "test page").is_ok());
        let err = check_magic(&buf, 0xBEEF, "test page").unwrap_err();
        assert!(err.to_string().contains("test page"));
    }
}
