//! `ScaleBudget` — one explicit memory budget for paper-scale builds.
//!
//! The paper's Memetracker configuration (m ≈ 1.5·10⁶ objects, N ≈ 10⁸
//! segments) is far larger than RAM-resident construction allows, and TPIE
//! (the paper's substrate) is configured with exactly one number: how much
//! memory the external-memory algorithms may use. This type is the
//! equivalent knob for the Rust reproduction. Every memory consumer of a
//! large build derives its size from here instead of assuming "everything
//! fits":
//!
//! * **buffer pools** — [`ScaleBudget::store_config`] sizes
//!   [`StoreConfig::pool_capacity`] from the pool share divided by the
//!   number of concurrently live [`crate::PagedFile`]s;
//! * **sort runs** — [`ScaleBudget::sort_records`] converts the sort share
//!   into an `ExternalSorter` in-memory run length for a given record
//!   width;
//! * **admission checks** — [`ScaleBudget::holds_dataset`] answers whether
//!   a dataset of the given size would fit entirely in the budget (the
//!   paperscale bench asserts this is *false*, i.e. the build really ran
//!   out-of-core).
//!
//! The split is static — half the budget to pools, half to sort runs —
//! because the two phases overlap: the sorted stream is consumed while the
//! bulk loader writes leaves through a pool.

use crate::pool::StoreConfig;
use crate::DEFAULT_BLOCK_SIZE;

/// A byte budget for one out-of-core build or serving tier (see module
/// docs). Copyable plain data; clone it freely into per-method configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleBudget {
    total_bytes: u64,
    block_size: usize,
}

impl Default for ScaleBudget {
    /// 256 MiB at the paper's 4 KB block size — small enough that every
    /// committed paperscale rung at `N ≥ 10⁷` is genuinely out-of-core,
    /// large enough that sort runs stay long.
    fn default() -> Self {
        Self::new(256 << 20)
    }
}

impl ScaleBudget {
    /// A budget of `total_bytes` at the default block size.
    pub fn new(total_bytes: u64) -> Self {
        Self::with_block_size(total_bytes, DEFAULT_BLOCK_SIZE)
    }

    /// A budget with an explicit block size (must be nonzero).
    pub fn with_block_size(total_bytes: u64, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be nonzero");
        Self { total_bytes, block_size }
    }

    /// The whole budget in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Block size used to translate bytes into pool frames.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Bytes reserved for buffer pools (half the budget).
    pub fn pool_bytes(&self) -> u64 {
        self.total_bytes / 2
    }

    /// Bytes reserved for external-sort runs (the other half).
    pub fn sort_bytes(&self) -> u64 {
        self.total_bytes - self.pool_bytes()
    }

    /// A [`StoreConfig`] whose per-file pool is the pool share divided by
    /// `live_files` — the number of [`crate::PagedFile`]s the build keeps
    /// open at once (every file gets its own pool). Never below 4 frames,
    /// so even absurdly small budgets stay functional (the budget is then
    /// honest-best-effort, not a hard cap).
    pub fn store_config(&self, live_files: usize) -> StoreConfig {
        let files = live_files.max(1) as u64;
        let frames = self.pool_bytes() / files / self.block_size as u64;
        StoreConfig {
            block_size: self.block_size,
            pool_capacity: frames.clamp(4, usize::MAX as u64) as usize,
        }
    }

    /// In-memory run length (in records) for an external sort of
    /// `record_len`-byte records, splitting the sort share across
    /// `concurrent_sorts` sorters alive at the same time. Never below 16
    /// records (the `ExternalSorter` minimum).
    pub fn sort_records(&self, record_len: usize, concurrent_sorts: usize) -> usize {
        let sorts = concurrent_sorts.max(1) as u64;
        let recs = self.sort_bytes() / sorts / record_len.max(1) as u64;
        recs.clamp(16, usize::MAX as u64) as usize
    }

    /// Whether a dataset of `dataset_bytes` would fit wholly inside this
    /// budget. The paperscale bench requires this to be `false` at every
    /// committed rung: the headline I/O ordering must emerge from an
    /// out-of-core build, not a cached one.
    pub fn holds_dataset(&self, dataset_bytes: u64) -> bool {
        dataset_bytes <= self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_split_halves() {
        let b = ScaleBudget::default();
        assert_eq!(b.total_bytes(), 256 << 20);
        assert_eq!(b.pool_bytes() + b.sort_bytes(), b.total_bytes());
        assert_eq!(b.block_size(), DEFAULT_BLOCK_SIZE);
    }

    #[test]
    fn store_config_divides_pool_share() {
        let b = ScaleBudget::new(64 << 20);
        let one = b.store_config(1);
        let four = b.store_config(4);
        assert_eq!(one.block_size, DEFAULT_BLOCK_SIZE);
        assert_eq!(one.pool_capacity, (32 << 20) / DEFAULT_BLOCK_SIZE);
        assert_eq!(four.pool_capacity, one.pool_capacity / 4);
    }

    #[test]
    fn tiny_budgets_stay_functional() {
        let b = ScaleBudget::new(1024);
        assert!(b.store_config(100).pool_capacity >= 4);
        assert!(b.sort_records(64, 100) >= 16);
    }

    #[test]
    fn sort_records_scale_with_record_len() {
        let b = ScaleBudget::new(32 << 20);
        assert_eq!(b.sort_records(32, 1), 2 * b.sort_records(64, 1));
        assert_eq!(b.sort_records(64, 2), b.sort_records(64, 1) / 2);
    }

    #[test]
    fn holds_dataset_is_a_plain_comparison() {
        let b = ScaleBudget::new(1 << 20);
        assert!(b.holds_dataset(1 << 20));
        assert!(!b.holds_dataset((1 << 20) + 1));
    }
}
