//! A block-device-backed write-ahead log.
//!
//! The ingest path of a live system (see `chronorank-live`) must make every
//! accepted append durable *before* acknowledging it, long before the
//! in-memory indexes fold it in. [`WriteAheadLog`] provides exactly that on
//! top of any [`BlockDevice`]:
//!
//! * **records** — opaque payloads framed as `[len][crc][payload]`, packed
//!   back to back into a flat byte stream laid over blocks `1..` of the
//!   device (block `0` is the header). The CRC covers the log *epoch*, the
//!   length and the payload, so a torn tail write, zeroed free space, or a
//!   leftover record from before a truncation all fail verification and
//!   terminate replay cleanly;
//! * **replay** — [`WriteAheadLog::replay`] walks every durable record from
//!   the current start offset, in append order, for crash recovery;
//! * **truncation on checkpoint** — [`WriteAheadLog::truncate`] logically
//!   empties the log by bumping the epoch and resetting the offsets, so the
//!   same device blocks are reused by later appends (old bytes are never
//!   re-interpreted: their CRCs were computed under the previous epoch).
//!
//! Durability is batched: [`WriteAheadLog::append`] buffers into the tail
//! block and only [`WriteAheadLog::sync`] guarantees the records are on the
//! device (one `fsync` per batch, the classic group-commit shape). Block
//! flushes are counted as `wal_writes`/`wal_bytes` on the shared
//! [`IoCounter`] — deliberately separate from the buffer-pool `writes` so
//! benchmarks can attribute cost to the ingest path.

use crate::device::{BlockDevice, MemDevice};
use crate::error::{Result, StorageError};
use crate::stats::{IoCounter, IoStats};
use crate::PageId;

const MAGIC: [u8; 8] = *b"CRWAL001";
/// Upper bound on one record's payload — anything larger in a scan is
/// treated as corruption.
pub const MAX_RECORD_LEN: usize = 1 << 24;
const FRAME: u64 = 8; // [len: u32][crc: u32]

/// CRC-32 (IEEE 802.3, reflected), table-driven. Small and dependency-free;
/// this is an integrity check against torn writes, not a cryptographic MAC.
/// Public because every framed byte format in the workspace (this WAL, the
/// chronorank-net wire protocol) shares the one implementation; chain
/// multi-part checksums by passing the previous result as `seed` (`0`
/// starts a fresh checksum).
pub fn crc32(seed: u32, data: &[u8]) -> u32 {
    fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut j = 0;
            while j < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                j += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(table);
    let mut c = !seed;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// CRC of one record: epoch ∥ len ∥ payload.
fn record_crc(epoch: u64, payload: &[u8]) -> u32 {
    let mut c = crc32(0, &epoch.to_le_bytes());
    c = crc32(c, &(payload.len() as u32).to_le_bytes());
    crc32(c, payload)
}

/// A write-ahead log over a block device (see module docs).
pub struct WriteAheadLog {
    device: Box<dyn BlockDevice>,
    counter: IoCounter,
    block_size: u64,
    /// Truncation epoch, mixed into every record CRC.
    epoch: u64,
    /// Byte offset (in the record region) of the first live record.
    start: u64,
    /// Byte offset one past the last appended record.
    end: u64,
    /// Everything below this offset is durable on the device.
    synced_end: u64,
    /// The block containing `end`, buffered for partial appends.
    tail: Vec<u8>,
    /// Payload+frame bytes appended since the last device flush (for the
    /// `wal_bytes` attribution).
    unflushed_bytes: u64,
    /// Live records: scanned on open, incremented per append, zeroed on
    /// truncation.
    records: u64,
}

impl WriteAheadLog {
    /// Create a fresh log on an empty device (any existing blocks are
    /// ignored; the header is written immediately).
    pub fn create(mut device: Box<dyn BlockDevice>, counter: IoCounter) -> Result<Self> {
        let block_size = device.block_size() as u64;
        if device.num_blocks() == 0 {
            device.allocate(1)?;
        }
        let mut wal = Self {
            device,
            counter,
            block_size,
            epoch: 0,
            start: 0,
            end: 0,
            synced_end: 0,
            tail: vec![0u8; block_size as usize],
            unflushed_bytes: 0,
            records: 0,
        };
        wal.write_header()?;
        Ok(wal)
    }

    /// Open an existing log: verify the header, then scan forward from the
    /// recorded start offset until the first record that fails its CRC —
    /// that is the durable end (a torn tail write is silently discarded,
    /// exactly the contract a crashed writer expects).
    pub fn open(mut device: Box<dyn BlockDevice>, counter: IoCounter) -> Result<Self> {
        let block_size = device.block_size() as u64;
        if device.num_blocks() == 0 {
            return Err(StorageError::Corrupt("WAL device has no header block".into()));
        }
        let mut header = vec![0u8; block_size as usize];
        device.read(0, &mut header)?;
        if header[..8] != MAGIC {
            return Err(StorageError::Corrupt("bad WAL magic".into()));
        }
        let bs = u32::from_le_bytes(header[8..12].try_into().unwrap()) as u64;
        if bs != block_size {
            return Err(StorageError::Corrupt(format!(
                "WAL written with block size {bs}, opened with {block_size}"
            )));
        }
        let epoch = u64::from_le_bytes(header[12..20].try_into().unwrap());
        let start = u64::from_le_bytes(header[20..28].try_into().unwrap());
        let crc = u32::from_le_bytes(header[28..32].try_into().unwrap());
        if crc != crc32(0, &header[..28]) {
            return Err(StorageError::Corrupt("WAL header CRC mismatch".into()));
        }
        let mut wal = Self {
            device,
            counter,
            block_size,
            epoch,
            start,
            end: start,
            synced_end: start,
            tail: vec![0u8; block_size as usize],
            unflushed_bytes: 0,
            records: 0,
        };
        // Scan to find the durable end.
        let mut offset = start;
        while let Some(len) = wal.probe(offset)? {
            offset += FRAME + len;
            wal.records += 1;
        }
        wal.end = offset;
        wal.synced_end = offset;
        // Pre-load the block holding `end` so partial-block appends extend
        // the existing bytes instead of clobbering them.
        let tail_block = wal.block_of(wal.end);
        if tail_block < wal.device.num_blocks() {
            let mut buf = std::mem::take(&mut wal.tail);
            wal.device.read(tail_block, &mut buf)?;
            wal.tail = buf;
        }
        Ok(wal)
    }

    /// Open when the device already holds a log, create otherwise.
    pub fn open_or_create(device: Box<dyn BlockDevice>, counter: IoCounter) -> Result<Self> {
        if device.num_blocks() == 0 {
            Self::create(device, counter)
        } else {
            Self::open(device, counter)
        }
    }

    /// An in-memory log (tests, benchmarks without durability).
    pub fn mem(block_size: usize) -> Self {
        Self::create(Box::new(MemDevice::new(block_size)), IoCounter::new())
            .expect("memory WAL cannot fail")
    }

    /// Append one record, returning its log sequence number (byte offset).
    /// The record is durable only after the next [`WriteAheadLog::sync`].
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if payload.is_empty() {
            return Err(StorageError::Corrupt("WAL records must be non-empty".into()));
        }
        if payload.len() > MAX_RECORD_LEN {
            return Err(StorageError::Corrupt(format!(
                "WAL record of {} bytes exceeds the {MAX_RECORD_LEN}-byte cap",
                payload.len()
            )));
        }
        let lsn = self.end;
        let crc = record_crc(self.epoch, payload);
        self.put(&(payload.len() as u32).to_le_bytes())?;
        self.put(&crc.to_le_bytes())?;
        self.put(payload)?;
        self.unflushed_bytes += FRAME + payload.len() as u64;
        self.records += 1;
        Ok(lsn)
    }

    /// Flush the buffered tail block and force device durability. After
    /// this returns, every appended record survives a crash.
    pub fn sync(&mut self) -> Result<()> {
        if self.synced_end < self.end {
            self.flush_tail()?;
        }
        self.device.sync()?;
        self.synced_end = self.end;
        Ok(())
    }

    /// Replay every live record in append order. Implicitly syncs first so
    /// the walk can read everything from the device.
    pub fn replay(&mut self, mut f: impl FnMut(u64, &[u8])) -> Result<u64> {
        self.sync()?;
        let mut offset = self.start;
        let mut replayed = 0u64;
        let mut buf = Vec::new();
        while offset < self.end {
            let len = match self.probe(offset)? {
                Some(len) => len,
                None => break,
            };
            buf.resize(len as usize, 0);
            self.read_stream(offset + FRAME, &mut buf)?;
            f(offset, &buf);
            offset += FRAME + len;
            replayed += 1;
        }
        Ok(replayed)
    }

    /// Checkpoint truncation: logically empty the log. The epoch bump makes
    /// every old record unverifiable, and the offset reset reuses the same
    /// device blocks for future appends.
    pub fn truncate(&mut self) -> Result<()> {
        self.epoch += 1;
        self.start = 0;
        self.end = 0;
        self.synced_end = 0;
        self.records = 0;
        self.tail.fill(0);
        self.unflushed_bytes = 0;
        self.write_header()?;
        self.device.sync()?;
        Ok(())
    }

    /// Number of live records (appended since the last truncation).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The current truncation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live bytes in the record region (frames included).
    pub fn len_bytes(&self) -> u64 {
        self.end - self.start
    }

    /// True when no live record exists.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Snapshot of the shared IO counter this log reports into.
    pub fn io_stats(&self) -> IoStats {
        self.counter.snapshot()
    }

    // --- byte-stream plumbing over blocks 1.. ---

    fn block_of(&self, offset: u64) -> PageId {
        1 + offset / self.block_size
    }

    /// Append raw bytes at `end`, flushing filled blocks as they complete.
    fn put(&mut self, bytes: &[u8]) -> Result<()> {
        let mut src = bytes;
        while !src.is_empty() {
            let in_block = (self.end % self.block_size) as usize;
            let room = self.block_size as usize - in_block;
            let take = room.min(src.len());
            self.tail[in_block..in_block + take].copy_from_slice(&src[..take]);
            self.end += take as u64;
            src = &src[take..];
            if self.end.is_multiple_of(self.block_size) {
                // Block filled: push it out and start a fresh one.
                self.flush_block(self.block_of(self.end - 1))?;
                self.tail.fill(0);
            }
        }
        Ok(())
    }

    /// Write the (possibly partial) tail block to the device.
    fn flush_tail(&mut self) -> Result<()> {
        if !self.end.is_multiple_of(self.block_size) {
            self.flush_block(self.block_of(self.end))?;
        }
        Ok(())
    }

    fn flush_block(&mut self, id: PageId) -> Result<()> {
        while id >= self.device.num_blocks() {
            self.device.allocate(1)?;
        }
        self.device.write(id, &self.tail)?;
        self.counter.add_wal_write(self.unflushed_bytes);
        self.unflushed_bytes = 0;
        Ok(())
    }

    /// Read `buf.len()` bytes of the record region starting at `offset`,
    /// consulting the in-memory tail block for the not-yet-flushed suffix.
    fn read_stream(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut pos = offset;
        let mut dst = 0usize;
        let mut scratch = vec![0u8; self.block_size as usize];
        while dst < buf.len() {
            let in_block = (pos % self.block_size) as usize;
            let take = (self.block_size as usize - in_block).min(buf.len() - dst);
            let id = self.block_of(pos);
            let tail_block = self.block_of(self.end);
            if id == tail_block && !self.end.is_multiple_of(self.block_size) {
                buf[dst..dst + take].copy_from_slice(&self.tail[in_block..in_block + take]);
            } else {
                if id >= self.device.num_blocks() {
                    return Err(StorageError::Corrupt(format!(
                        "WAL read past allocated blocks (offset {pos})"
                    )));
                }
                self.device.read(id, &mut scratch)?;
                buf[dst..dst + take].copy_from_slice(&scratch[in_block..in_block + take]);
            }
            pos += take as u64;
            dst += take;
        }
        Ok(())
    }

    /// Verify the record at `offset`; `Some(payload_len)` when it parses
    /// and passes its CRC, `None` when the stream ends there.
    fn probe(&mut self, offset: u64) -> Result<Option<u64>> {
        let capacity = (self.device.num_blocks().saturating_sub(1)) * self.block_size;
        let in_memory_end = self.end.max(self.synced_end);
        let readable = capacity.max(in_memory_end);
        if offset + FRAME > readable {
            return Ok(None);
        }
        let mut frame = [0u8; FRAME as usize];
        self.read_stream(offset, &mut frame)?;
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as u64;
        let crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_LEN as u64 || offset + FRAME + len > readable {
            return Ok(None);
        }
        let mut payload = vec![0u8; len as usize];
        self.read_stream(offset + FRAME, &mut payload)?;
        if record_crc(self.epoch, &payload) != crc {
            return Ok(None);
        }
        Ok(Some(len))
    }

    fn write_header(&mut self) -> Result<()> {
        let mut header = vec![0u8; self.block_size as usize];
        header[..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&(self.block_size as u32).to_le_bytes());
        header[12..20].copy_from_slice(&self.epoch.to_le_bytes());
        header[20..28].copy_from_slice(&self.start.to_le_bytes());
        let crc = crc32(0, &header[..28]);
        header[28..32].copy_from_slice(&crc.to_le_bytes());
        self.device.write(0, &header)?;
        self.counter.add_wal_write(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FileDevice;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("chronorank-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    #[test]
    fn wal_is_send() {
        // One appender, movable between threads (the ingest engine owns it
        // wherever it lives); `Sync` is deliberately not required.
        fn assert_send<T: Send>() {}
        assert_send::<WriteAheadLog>();
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
        // Seeded continuation equals one-shot over the concatenation.
        let c = crc32(0, b"1234");
        assert_eq!(crc32(c, b"56789"), crc32(0, b"123456789"));
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let mut wal = WriteAheadLog::mem(128);
        let payloads: Vec<Vec<u8>> =
            (0u8..40).map(|i| vec![i; 3 + (i as usize * 7) % 50]).collect();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.records(), 40);
        let mut seen = Vec::new();
        let n = wal.replay(|_, p| seen.push(p.to_vec())).unwrap();
        assert_eq!(n, 40);
        assert_eq!(seen, payloads);
    }

    #[test]
    fn records_span_blocks() {
        let mut wal = WriteAheadLog::mem(64);
        let big = vec![0xAB; 500]; // spans ~8 blocks
        wal.append(&big).unwrap();
        wal.append(&[1, 2, 3]).unwrap();
        let mut seen = Vec::new();
        wal.replay(|_, p| seen.push(p.to_vec())).unwrap();
        assert_eq!(seen, vec![big, vec![1, 2, 3]]);
    }

    #[test]
    fn reopen_recovers_synced_records_only() {
        let path = temp_path("reopen");
        let counter = IoCounter::new();
        {
            let dev = FileDevice::create(&path, 128).unwrap();
            let mut wal = WriteAheadLog::create(Box::new(dev), counter.clone()).unwrap();
            wal.append(b"alpha").unwrap();
            wal.append(b"beta").unwrap();
            wal.sync().unwrap();
            wal.append(b"never-synced").unwrap();
            // Simulated crash: dropped without sync.
        }
        let dev = FileDevice::open(&path, 128).unwrap();
        let mut wal = WriteAheadLog::open(Box::new(dev), IoCounter::new()).unwrap();
        let mut seen = Vec::new();
        wal.replay(|_, p| seen.push(p.to_vec())).unwrap();
        // The unsynced record may or may not have reached the device
        // (partial tail flushes happen when blocks fill); the synced prefix
        // must always survive, in order.
        assert!(seen.len() >= 2);
        assert_eq!(&seen[0], b"alpha");
        assert_eq!(&seen[1], b"beta");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_empties_and_reuses_blocks() {
        let mut wal = WriteAheadLog::mem(128);
        for i in 0..10u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        wal.sync().unwrap();
        let blocks_before = wal.device.num_blocks();
        wal.truncate().unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.replay(|_, _| panic!("log must be empty")).unwrap(), 0);
        // New appends land in the reused region and old bytes are never
        // resurrected (epoch mismatch).
        wal.append(b"fresh").unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.device.num_blocks(), blocks_before, "blocks are reused");
        let mut seen = Vec::new();
        wal.replay(|_, p| seen.push(p.to_vec())).unwrap();
        assert_eq!(seen, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn truncation_survives_reopen() {
        let path = temp_path("truncate");
        {
            let dev = FileDevice::create(&path, 128).unwrap();
            let mut wal = WriteAheadLog::create(Box::new(dev), IoCounter::new()).unwrap();
            wal.append(b"old-1").unwrap();
            wal.append(b"old-2").unwrap();
            wal.sync().unwrap();
            wal.truncate().unwrap();
            wal.append(b"new").unwrap();
            wal.sync().unwrap();
        }
        let dev = FileDevice::open(&path, 128).unwrap();
        let mut wal = WriteAheadLog::open(Box::new(dev), IoCounter::new()).unwrap();
        let mut seen = Vec::new();
        wal.replay(|_, p| seen.push(p.to_vec())).unwrap();
        assert_eq!(seen, vec![b"new".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_write_is_discarded() {
        let path = temp_path("torn");
        {
            let dev = FileDevice::create(&path, 128).unwrap();
            let mut wal = WriteAheadLog::create(Box::new(dev), IoCounter::new()).unwrap();
            wal.append(b"good").unwrap();
            wal.sync().unwrap();
            wal.append(&vec![7u8; 300]).unwrap();
            wal.sync().unwrap();
        }
        // Corrupt the middle of the second (spanning) record on disk.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(128 + 70)).unwrap();
            f.write_all(&[0xFF; 8]).unwrap();
        }
        let dev = FileDevice::open(&path, 128).unwrap();
        let mut wal = WriteAheadLog::open(Box::new(dev), IoCounter::new()).unwrap();
        let mut seen = Vec::new();
        wal.replay(|_, p| seen.push(p.to_vec())).unwrap();
        assert_eq!(seen, vec![b"good".to_vec()], "corrupted suffix must be dropped");
        // The log remains appendable after recovery.
        wal.append(b"after").unwrap();
        wal.sync().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wal_flushes_are_counted_on_the_shared_counter() {
        let mut wal = WriteAheadLog::mem(128);
        for _ in 0..5 {
            wal.append(&[9u8; 40]).unwrap();
        }
        wal.sync().unwrap();
        let s = wal.io_stats();
        assert!(s.wal_writes >= 2, "header + at least one data flush: {s:?}");
        assert_eq!(s.wal_bytes, 5 * 48, "frame (8) + payload (40) per record");
        assert_eq!(s.writes, 0, "WAL traffic must not count as pool writes");
    }

    #[test]
    fn invalid_appends_are_rejected() {
        let mut wal = WriteAheadLog::mem(128);
        assert!(wal.append(&[]).is_err());
        assert!(wal.append(&vec![0u8; MAX_RECORD_LEN + 1]).is_err());
    }

    #[test]
    fn open_rejects_foreign_headers() {
        let mut dev = MemDevice::new(128);
        dev.allocate(1).unwrap();
        dev.write(0, &[0x42u8; 128]).unwrap();
        assert!(matches!(
            WriteAheadLog::open(Box::new(dev), IoCounter::new()),
            Err(StorageError::Corrupt(_))
        ));
        // Block-size mismatch is also rejected.
        let path = temp_path("bs");
        {
            let dev = FileDevice::create(&path, 128).unwrap();
            WriteAheadLog::create(Box::new(dev), IoCounter::new()).unwrap();
        }
        let dev = FileDevice::open(&path, 64).unwrap();
        assert!(WriteAheadLog::open(Box::new(dev), IoCounter::new()).is_err());
        std::fs::remove_file(&path).ok();
    }
}
