//! Raw block devices.
//!
//! A [`BlockDevice`] is an uncached, uncounted array of fixed-size blocks.
//! The buffer pool ([`crate::PagedFile`]) sits on top and is the only
//! component that should talk to a device directly.

use crate::error::{Result, StorageError};
use crate::PageId;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// An array of fixed-size blocks addressed by [`PageId`].
///
/// `Send + Sync` are supertraits: devices live inside pools and logs that
/// move between (and are shared by) threads, so every implementation must
/// be transferable and reference-shareable. Devices take `&mut self` —
/// exclusion is the caller's job (the pool's internal lock, or plain
/// ownership) — so `Sync` costs implementations nothing.
pub trait BlockDevice: Send + Sync {
    /// Block size in bytes; all buffers passed in must be exactly this long.
    fn block_size(&self) -> usize;

    /// Number of allocated blocks.
    fn num_blocks(&self) -> u64;

    /// Read block `id` into `buf`.
    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Write `buf` to block `id`.
    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Extend the device by `n` zeroed blocks, returning the id of the first.
    fn allocate(&mut self, n: u64) -> Result<PageId>;

    /// Force durability (no-op for memory devices).
    fn sync(&mut self) -> Result<()>;
}

fn check_len(buf_len: usize, block_size: usize) -> Result<()> {
    if buf_len != block_size {
        return Err(StorageError::BadBufferLen { got: buf_len, want: block_size });
    }
    Ok(())
}

fn check_bounds(id: PageId, len: u64) -> Result<()> {
    if id >= len {
        return Err(StorageError::OutOfBounds { id, len });
    }
    Ok(())
}

/// An in-memory block device. The default backing for benchmarks: IO counts
/// are identical to the file-backed device while keeping runs fast and
/// filesystem-independent.
pub struct MemDevice {
    block_size: usize,
    blocks: Vec<Box<[u8]>>,
}

impl MemDevice {
    /// Create an empty device with the given block size.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size >= 64, "block size unreasonably small");
        Self { block_size, blocks: Vec::new() }
    }

    /// Bytes currently held by the device.
    pub fn size_bytes(&self) -> u64 {
        self.blocks.len() as u64 * self.block_size as u64
    }
}

impl BlockDevice for MemDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        check_len(buf.len(), self.block_size)?;
        check_bounds(id, self.blocks.len() as u64)?;
        buf.copy_from_slice(&self.blocks[id as usize]);
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        check_len(buf.len(), self.block_size)?;
        check_bounds(id, self.blocks.len() as u64)?;
        self.blocks[id as usize].copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&mut self, n: u64) -> Result<PageId> {
        let first = self.blocks.len() as u64;
        for _ in 0..n {
            self.blocks.push(vec![0u8; self.block_size].into_boxed_slice());
        }
        Ok(first)
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// A file-backed block device: block `i` lives at byte offset
/// `i * block_size` of a single file.
pub struct FileDevice {
    file: File,
    block_size: usize,
    num_blocks: u64,
}

impl FileDevice {
    /// Create (truncate) a device file at `path`.
    pub fn create(path: &Path, block_size: usize) -> Result<Self> {
        assert!(block_size >= 64, "block size unreasonably small");
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(Self { file, block_size, num_blocks: 0 })
    }

    /// Open an existing device file; its length must be a whole number of
    /// blocks.
    pub fn open(path: &Path, block_size: usize) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % block_size as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a multiple of block size {block_size}"
            )));
        }
        Ok(Self { file, block_size, num_blocks: len / block_size as u64 })
    }
}

impl BlockDevice for FileDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        check_len(buf.len(), self.block_size)?;
        check_bounds(id, self.num_blocks)?;
        self.file.seek(SeekFrom::Start(id * self.block_size as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        check_len(buf.len(), self.block_size)?;
        check_bounds(id, self.num_blocks)?;
        self.file.seek(SeekFrom::Start(id * self.block_size as u64))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn allocate(&mut self, n: u64) -> Result<PageId> {
        let first = self.num_blocks;
        self.num_blocks += n;
        self.file.set_len(self.num_blocks * self.block_size as u64)?;
        Ok(first)
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &mut dyn BlockDevice) {
        let bs = dev.block_size();
        let first = dev.allocate(3).unwrap();
        assert_eq!(dev.num_blocks(), 3);
        let mut page = vec![0u8; bs];
        for i in 0..3u64 {
            page.fill(i as u8 + 1);
            dev.write(first + i, &page).unwrap();
        }
        let mut out = vec![0u8; bs];
        for i in 0..3u64 {
            dev.read(first + i, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == i as u8 + 1), "block {i} mismatch");
        }
        // Fresh allocations are zeroed.
        let id = dev.allocate(1).unwrap();
        dev.read(id, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        dev.sync().unwrap();
    }

    #[test]
    fn mem_device_roundtrip() {
        roundtrip(&mut MemDevice::new(256));
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("chronorank-dev-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.blk");
        roundtrip(&mut FileDevice::create(&path, 256).unwrap());
        // Re-open and confirm persisted contents.
        let mut dev = FileDevice::open(&path, 256).unwrap();
        assert_eq!(dev.num_blocks(), 4);
        let mut out = vec![0u8; 256];
        dev.read(1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut dev = MemDevice::new(128);
        let mut buf = vec![0u8; 128];
        assert!(matches!(dev.read(0, &mut buf), Err(StorageError::OutOfBounds { .. })));
        dev.allocate(1).unwrap();
        assert!(dev.read(0, &mut buf).is_ok());
        assert!(matches!(dev.write(5, &buf), Err(StorageError::OutOfBounds { .. })));
    }

    #[test]
    fn wrong_buffer_length_is_an_error() {
        let mut dev = MemDevice::new(128);
        dev.allocate(1).unwrap();
        let mut small = vec![0u8; 64];
        assert!(matches!(dev.read(0, &mut small), Err(StorageError::BadBufferLen { .. })));
    }

    #[test]
    fn open_rejects_ragged_file() {
        let dir = std::env::temp_dir().join(format!("chronorank-rag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.blk");
        std::fs::write(&path, vec![0u8; 300]).unwrap();
        assert!(matches!(FileDevice::open(&path, 256), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
