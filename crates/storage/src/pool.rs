//! Buffer pool: a write-back block cache with LRU eviction.
//!
//! [`PagedFile`] is the unit the index crates build on. Reads that hit the
//! cache are free; misses fetch from the device and count one read IO;
//! dirty frames count one write IO when they are evicted or flushed. This
//! mirrors how TPIE-backed structures in the paper accumulate their IO
//! counts.
//!
//! The API is copy-in/copy-out (callers own scratch buffers) which keeps the
//! pool reentrancy-safe without unsafe code; a 4 KB memcpy is far below the
//! cost noise floor of anything this workspace measures.
//!
//! `PagedFile` is `Send + Sync`: the pool state sits behind one internal
//! [`Mutex`], so any number of threads can read and write through a shared
//! reference (`&PagedFile` / `Arc<PagedFile>`). The critical section covers
//! exactly one block transfer plus the frame-table update — callers never
//! hold the lock while computing on block contents, because the API copies
//! the block out before returning.

use crate::device::BlockDevice;
use crate::error::{Result, StorageError};
use crate::stats::IoCounter;
use crate::PageId;
use std::collections::HashMap;
use std::sync::Mutex;

/// Configuration for a [`PagedFile`]'s pool and device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Block size in bytes (paper default: 4096).
    pub block_size: usize,
    /// Number of cache frames per file.
    pub pool_capacity: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { block_size: crate::DEFAULT_BLOCK_SIZE, pool_capacity: crate::DEFAULT_POOL_CAPACITY }
    }
}

struct Frame {
    id: PageId,
    dirty: bool,
    /// Tick of the most recent access (LRU victim = minimum).
    last_used: u64,
    buf: Box<[u8]>,
}

struct PoolInner {
    device: Box<dyn BlockDevice>,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl PoolInner {
    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.frames[idx].last_used = self.tick;
    }

    /// Index of the frame holding `id`, faulting it in if necessary.
    fn frame_for(&mut self, id: PageId, counter: &IoCounter, load: bool) -> Result<usize> {
        if id >= self.device.num_blocks() {
            return Err(StorageError::OutOfBounds { id, len: self.device.num_blocks() });
        }
        if let Some(&idx) = self.map.get(&id) {
            self.hits += 1;
            self.touch(idx);
            return Ok(idx);
        }
        self.misses += 1;
        let idx = if self.frames.len() < self.capacity {
            let bs = self.device.block_size();
            self.frames.push(Frame {
                id,
                dirty: false,
                last_used: 0,
                buf: vec![0u8; bs].into_boxed_slice(),
            });
            self.frames.len() - 1
        } else {
            let victim = self.pick_victim();
            let old = self.frames[victim].id;
            if self.frames[victim].dirty {
                let buf = std::mem::take(&mut self.frames[victim].buf);
                self.device.write(old, &buf)?;
                self.frames[victim].buf = buf;
                counter.add_writes(1);
            }
            self.map.remove(&old);
            self.frames[victim].id = id;
            self.frames[victim].dirty = false;
            victim
        };
        if load {
            let mut buf = std::mem::take(&mut self.frames[idx].buf);
            self.device.read(id, &mut buf)?;
            self.frames[idx].buf = buf;
            counter.add_reads(1);
        } else {
            self.frames[idx].buf.fill(0);
        }
        self.map.insert(id, idx);
        self.touch(idx);
        Ok(idx)
    }

    /// LRU victim: the frame with the smallest access tick. A linear scan is
    /// fine at the pool sizes this workspace uses (≤ a few thousand frames),
    /// and eviction cost is dominated by the device transfer anyway.
    fn pick_victim(&self) -> usize {
        self.frames
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(i, _)| i)
            .expect("pool has at least one frame")
    }

    fn flush(&mut self, counter: &IoCounter) -> Result<()> {
        for idx in 0..self.frames.len() {
            if self.frames[idx].dirty {
                let id = self.frames[idx].id;
                let buf = std::mem::take(&mut self.frames[idx].buf);
                self.device.write(id, &buf)?;
                self.frames[idx].buf = buf;
                self.frames[idx].dirty = false;
                counter.add_writes(1);
            }
        }
        self.device.sync()?;
        Ok(())
    }
}

/// A buffer-pool-cached block file. `Send + Sync`: share freely via
/// `&PagedFile` or `Arc<PagedFile>` — all methods take `&self` and the
/// pool synchronizes internally.
pub struct PagedFile {
    inner: Mutex<PoolInner>,
    counter: IoCounter,
    block_size: usize,
}

impl PagedFile {
    /// Wrap `device` with a pool of `config.pool_capacity` frames, charging
    /// IOs to `counter`.
    pub fn new(device: Box<dyn BlockDevice>, config: StoreConfig, counter: IoCounter) -> Self {
        assert_eq!(device.block_size(), config.block_size, "device/config block size mismatch");
        assert!(config.pool_capacity >= 1, "pool needs at least one frame");
        let block_size = device.block_size();
        Self {
            inner: Mutex::new(PoolInner {
                device,
                frames: Vec::new(),
                map: HashMap::new(),
                tick: 0,
                capacity: config.pool_capacity,
                hits: 0,
                misses: 0,
            }),
            counter,
            block_size,
        }
    }

    /// The pool state, poison-transparent: a panic inside the lock can only
    /// happen on a caller-visible invariant breach (and the pool never
    /// unwinds mid-update on the error paths it returns), so serving
    /// threads keep going instead of cascading the poison.
    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of allocated blocks.
    pub fn num_blocks(&self) -> u64 {
        self.lock().device.num_blocks()
    }

    /// Total bytes allocated on the device (the "index size" metric).
    pub fn size_bytes(&self) -> u64 {
        self.num_blocks() * self.block_size as u64
    }

    /// The shared IO counter this file charges to.
    pub fn io(&self) -> IoCounter {
        self.counter.clone()
    }

    /// Read block `id` into `buf` (length must equal the block size).
    pub fn read(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(StorageError::BadBufferLen { got: buf.len(), want: self.block_size });
        }
        let mut inner = self.lock();
        let idx = inner.frame_for(id, &self.counter, true)?;
        buf.copy_from_slice(&inner.frames[idx].buf);
        Ok(())
    }

    /// Write `buf` to block `id` (write-back: dirties the cached frame).
    pub fn write(&self, id: PageId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.block_size {
            return Err(StorageError::BadBufferLen { got: buf.len(), want: self.block_size });
        }
        let mut inner = self.lock();
        // A full-block overwrite never needs to fault the old contents in.
        let idx = inner.frame_for(id, &self.counter, false)?;
        inner.frames[idx].buf.copy_from_slice(buf);
        inner.frames[idx].dirty = true;
        Ok(())
    }

    /// Extend the file by `n` zeroed blocks, returning the first new id.
    pub fn allocate(&self, n: u64) -> Result<PageId> {
        self.lock().device.allocate(n)
    }

    /// Write all dirty frames back and sync the device.
    pub fn flush(&self) -> Result<()> {
        self.lock().flush(&self.counter)
    }

    /// Flush, then empty the cache. Subsequent reads fault from the device,
    /// which is how per-query cold IO counts are measured.
    pub fn drop_cache(&self) -> Result<()> {
        let mut inner = self.lock();
        inner.flush(&self.counter)?;
        inner.frames.clear();
        inner.map.clear();
        inner.tick = 0;
        Ok(())
    }

    /// `(cache hits, cache misses)` since creation.
    pub fn cache_stats(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.hits, inner.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn file(cap: usize) -> PagedFile {
        let cfg = StoreConfig { block_size: 128, pool_capacity: cap };
        PagedFile::new(Box::new(MemDevice::new(128)), cfg, IoCounter::new())
    }

    #[test]
    fn write_then_read_hits_cache() {
        let f = file(4);
        let id = f.allocate(1).unwrap();
        let page = vec![7u8; 128];
        f.write(id, &page).unwrap();
        let mut out = vec![0u8; 128];
        f.read(id, &mut out).unwrap();
        assert_eq!(out, page);
        // Never touched the device: write was cached, read hit.
        assert_eq!(f.io().snapshot().total(), 0);
    }

    #[test]
    fn drop_cache_counts_cold_reads() {
        let f = file(4);
        let id = f.allocate(2).unwrap();
        f.write(id, &[1u8; 128]).unwrap();
        f.write(id + 1, &[2u8; 128]).unwrap();
        f.drop_cache().unwrap();
        assert_eq!(f.io().snapshot().writes, 2);
        f.io().reset();

        let mut out = vec![0u8; 128];
        f.read(id, &mut out).unwrap();
        assert_eq!(out[0], 1);
        f.read(id + 1, &mut out).unwrap();
        assert_eq!(out[0], 2);
        assert_eq!(f.io().snapshot().reads, 2);
        // Re-reads hit the cache.
        f.read(id, &mut out).unwrap();
        assert_eq!(f.io().snapshot().reads, 2);
    }

    #[test]
    fn eviction_writes_back_dirty_frames() {
        let f = file(2);
        let first = f.allocate(4).unwrap();
        for i in 0..4u64 {
            f.write(first + i, &[i as u8 + 1; 128]).unwrap();
        }
        // Pool holds 2 frames, so at least 2 dirty evictions must have hit
        // the device by now.
        assert!(f.io().snapshot().writes >= 2);
        // All four blocks are still correct after a full flush + cold read.
        f.drop_cache().unwrap();
        let mut out = vec![0u8; 128];
        for i in 0..4u64 {
            f.read(first + i, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == i as u8 + 1), "block {i}");
        }
    }

    #[test]
    fn clock_prefers_unreferenced_victims() {
        let f = file(2);
        let first = f.allocate(3).unwrap();
        let mut out = vec![0u8; 128];
        f.read(first, &mut out).unwrap(); // frame A: block 0
        f.read(first + 1, &mut out).unwrap(); // frame B: block 1
        f.read(first, &mut out).unwrap(); // touch block 0 again
        f.read(first + 2, &mut out).unwrap(); // needs eviction
        f.io().reset();
        // Block 0 was recently referenced, so block 1 should be the victim;
        // reading block 0 again must still be a cache hit.
        f.read(first, &mut out).unwrap();
        assert_eq!(f.io().snapshot().reads, 0);
    }

    #[test]
    fn read_past_end_errors() {
        let f = file(2);
        let mut out = vec![0u8; 128];
        assert!(matches!(f.read(3, &mut out), Err(StorageError::OutOfBounds { .. })));
    }

    #[test]
    fn bad_buffer_len_errors() {
        let f = file(2);
        f.allocate(1).unwrap();
        let mut out = vec![0u8; 4];
        assert!(matches!(f.read(0, &mut out), Err(StorageError::BadBufferLen { .. })));
        assert!(matches!(f.write(0, &out), Err(StorageError::BadBufferLen { .. })));
    }

    #[test]
    fn size_bytes_tracks_allocation() {
        let f = file(2);
        assert_eq!(f.size_bytes(), 0);
        f.allocate(3).unwrap();
        assert_eq!(f.size_bytes(), 3 * 128);
    }

    #[test]
    fn single_frame_pool_works() {
        let f = file(1);
        let first = f.allocate(8).unwrap();
        for i in 0..8u64 {
            f.write(first + i, &[i as u8; 128]).unwrap();
        }
        f.drop_cache().unwrap();
        let mut out = vec![0u8; 128];
        for i in (0..8u64).rev() {
            f.read(first + i, &mut out).unwrap();
            assert_eq!(out[0], i as u8);
        }
    }

    #[test]
    fn paged_file_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PagedFile>();
    }

    #[test]
    fn shared_reads_and_writes_from_threads_are_coherent() {
        // Two threads ping-pong over a shared reference; the pool's lock
        // must keep every block intact (fuller 8-thread stress with device
        // ground truth lives in tests/concurrency.rs).
        let f = file(2);
        let first = f.allocate(8).unwrap();
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let f = &f;
                scope.spawn(move || {
                    let mut buf = vec![0u8; 128];
                    for round in 0..200u64 {
                        for i in (0..8).filter(|i| i % 2 == t) {
                            buf.fill((i + round) as u8);
                            f.write(first + i, &buf).unwrap();
                            let mut out = vec![0u8; 128];
                            f.read(first + i, &mut out).unwrap();
                            assert_eq!(out[0], (i + round) as u8);
                        }
                    }
                });
            }
        });
    }
}
