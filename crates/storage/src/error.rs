//! Error handling for the storage layer.

use std::fmt;

/// Storage-layer result alias.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors surfaced by devices, buffer pools and environments.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying OS-level IO failure (file-backed devices only).
    Io(std::io::Error),
    /// A block id beyond the end of the device was addressed.
    OutOfBounds {
        /// The offending block id.
        id: u64,
        /// Number of blocks currently allocated on the device.
        len: u64,
    },
    /// A caller-supplied buffer did not match the device block size.
    BadBufferLen {
        /// Length the caller provided.
        got: usize,
        /// The device's block size.
        want: usize,
    },
    /// On-disk bytes failed validation while being decoded.
    Corrupt(String),
    /// An [`crate::Env`] file name was created twice.
    DuplicateFile(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage io error: {e}"),
            StorageError::OutOfBounds { id, len } => {
                write!(f, "block {id} out of bounds (device has {len} blocks)")
            }
            StorageError::BadBufferLen { got, want } => {
                write!(f, "buffer length {got} does not match block size {want}")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt page: {msg}"),
            StorageError::DuplicateFile(name) => {
                write!(f, "file {name:?} already exists in this environment")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::OutOfBounds { id: 9, len: 3 };
        assert!(e.to_string().contains("block 9"));
        let e = StorageError::BadBufferLen { got: 10, want: 4096 };
        assert!(e.to_string().contains("4096"));
        let e = StorageError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = StorageError::DuplicateFile("x".into());
        assert!(e.to_string().contains('x'));
    }

    #[test]
    fn io_error_source_is_preserved() {
        let inner = std::io::Error::other("boom");
        let e = StorageError::from(inner);
        assert!(std::error::Error::source(&e).is_some());
    }
}
