//! Cross-thread correctness of the storage layer (ISSUE 5 acceptance).
//!
//! Eight threads hammer ONE shared [`PagedFile`] — reads, dirty writes, and
//! forced evictions through an undersized pool — while an instrumented
//! device independently counts every transfer that actually reaches it.
//! Afterwards the shared [`IoStats`] must equal the device's own atomic
//! tally exactly (no lost counter increments across threads) and every
//! block must hold the last value its owning thread wrote (no torn or lost
//! block updates through the pool's lock).

use chronorank_storage::{
    BlockDevice, Env, IoCounter, IoStats, MemDevice, PageId, PagedFile, StoreConfig,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps a device, atomically counting the transfers that reach it — the
/// ground truth the pool's shared `IoCounter` is checked against.
struct CountingDevice {
    inner: MemDevice,
    reads: Arc<AtomicU64>,
    writes: Arc<AtomicU64>,
}

impl BlockDevice for CountingDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }
    fn read(&mut self, id: PageId, buf: &mut [u8]) -> chronorank_storage::Result<()> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.inner.read(id, buf)
    }
    fn write(&mut self, id: PageId, buf: &[u8]) -> chronorank_storage::Result<()> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.inner.write(id, buf)
    }
    fn allocate(&mut self, n: u64) -> chronorank_storage::Result<PageId> {
        self.inner.allocate(n)
    }
    fn sync(&mut self) -> chronorank_storage::Result<()> {
        self.inner.sync()
    }
}

const BLOCK: usize = 128;
const THREADS: u64 = 8;
const BLOCKS_PER_THREAD: u64 = 16;
const ROUNDS: u64 = 150;

#[test]
fn eight_threads_hammer_one_shared_paged_file() {
    let device_reads = Arc::new(AtomicU64::new(0));
    let device_writes = Arc::new(AtomicU64::new(0));
    let device = CountingDevice {
        inner: MemDevice::new(BLOCK),
        reads: Arc::clone(&device_reads),
        writes: Arc::clone(&device_writes),
    };
    // Pool far smaller than the working set: evictions (and their
    // write-backs) happen constantly, under contention.
    let cfg = StoreConfig { block_size: BLOCK, pool_capacity: 8 };
    let counter = IoCounter::new();
    let file = PagedFile::new(Box::new(device), cfg, counter.clone());
    let total_blocks = THREADS * BLOCKS_PER_THREAD;
    let first = file.allocate(total_blocks).unwrap();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let file = &file;
            scope.spawn(move || {
                let mut page = vec![0u8; BLOCK];
                let mut out = vec![0u8; BLOCK];
                for round in 1..=ROUNDS {
                    for b in 0..BLOCKS_PER_THREAD {
                        // Thread t exclusively owns blocks t*BPT..(t+1)*BPT,
                        // so "last write wins" is well-defined per block.
                        let id = first + t * BLOCKS_PER_THREAD + b;
                        let tag = (t * 31 + b * 7 + round) as u8;
                        page.fill(tag);
                        file.write(id, &page).unwrap();
                        // Mix in reads of a *shared* block region too, so
                        // threads actually contend on the same frames.
                        let foreign = first + (t * BLOCKS_PER_THREAD + b + round) % total_blocks;
                        file.read(foreign, &mut out).unwrap();
                        // A block is never torn: whatever value we observe
                        // must fill the whole block.
                        assert!(
                            out.iter().all(|&x| x == out[0]),
                            "torn block {foreign} observed by thread {t}"
                        );
                        file.read(id, &mut out).unwrap();
                        assert_eq!(out[0], tag, "thread {t} lost its own write to block {id}");
                    }
                }
            });
        }
    });

    // Flush everything so the device holds the final image.
    file.flush().unwrap();

    // 1. Counter integrity: the shared IoStats equals the device's own
    //    atomic tally — cross-thread increments were never lost.
    let s: IoStats = counter.snapshot();
    assert_eq!(s.reads, device_reads.load(Ordering::Relaxed), "read counter diverged");
    assert_eq!(s.writes, device_writes.load(Ordering::Relaxed), "write counter diverged");
    assert!(s.reads > 0 && s.writes > 0, "the workload must actually evict: {s:?}");

    // 2. Data integrity: every block holds its owner's final value.
    file.drop_cache().unwrap();
    let mut out = vec![0u8; BLOCK];
    for t in 0..THREADS {
        for b in 0..BLOCKS_PER_THREAD {
            let id = first + t * BLOCKS_PER_THREAD + b;
            let want = (t * 31 + b * 7 + ROUNDS) as u8;
            file.read(id, &mut out).unwrap();
            assert!(out.iter().all(|&x| x == want), "block {id}: final image lost");
        }
    }
}

#[test]
fn per_thread_io_sums_match_the_shared_counter() {
    // Eight threads, each with its own PagedFile from one shared Env, each
    // tracking the IO delta it alone caused (its file is private, so the
    // before/after difference of a private probe counter attributes
    // exactly). The Env's shared counter must equal the per-thread sum.
    let env = Env::mem(StoreConfig { block_size: BLOCK, pool_capacity: 4 });
    let per_thread: Vec<IoStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let env = &env;
                scope.spawn(move || {
                    let probe = IoCounter::new();
                    let device = CountingDevice {
                        inner: MemDevice::new(BLOCK),
                        reads: Arc::new(AtomicU64::new(0)),
                        writes: Arc::new(AtomicU64::new(0)),
                    };
                    // Private file charging BOTH the env's shared counter
                    // (via a second env-made file) and a private probe.
                    let shared_file = env.create_file(&format!("t{t}")).unwrap();
                    let private = PagedFile::new(Box::new(device), env.config(), probe.clone());
                    let sid = shared_file.allocate(8).unwrap();
                    let pid = private.allocate(8).unwrap();
                    let mut page = vec![0u8; BLOCK];
                    let mut out = vec![0u8; BLOCK];
                    for round in 0..100u64 {
                        for b in 0..8u64 {
                            page.fill((round + b) as u8);
                            shared_file.write(sid + b, &page).unwrap();
                            private.write(pid + b, &page).unwrap();
                        }
                        shared_file.drop_cache().unwrap();
                        private.drop_cache().unwrap();
                        for b in 0..8u64 {
                            shared_file.read(sid + b, &mut out).unwrap();
                            private.read(pid + b, &mut out).unwrap();
                        }
                    }
                    // The private twin executed the identical op sequence,
                    // so its counter is this thread's exact contribution.
                    probe.snapshot()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let summed: IoStats = per_thread.iter().sum();
    assert_eq!(env.io_stats(), summed, "shared counter must equal the per-thread sum");
    assert!(summed.total() > 0);
}
