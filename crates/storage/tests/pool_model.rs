//! Property test: a [`PagedFile`] under arbitrary read/write/flush/drop
//! sequences must behave exactly like a plain in-memory array of blocks,
//! and its IO counters must never exceed the workload's worst case.

use chronorank_storage::{Env, StoreConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write(u8, u8),
    Read(u8),
    Flush,
    DropCache,
}

fn arb_op(max_block: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_block, any::<u8>()).prop_map(|(b, v)| Op::Write(b, v)),
        (0..max_block).prop_map(Op::Read),
        Just(Op::Flush),
        Just(Op::DropCache),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_matches_flat_array_model(
        ops in proptest::collection::vec(arb_op(12), 1..120),
        pool_frames in 1usize..6,
    ) {
        let block_size = 128usize;
        let env = Env::mem(StoreConfig { block_size, pool_capacity: pool_frames });
        let file = env.create_file("model").unwrap();
        file.allocate(12).unwrap();
        let mut model = vec![vec![0u8; block_size]; 12];
        let mut buf = vec![0u8; block_size];
        let mut logical_accesses = 0u64;
        for op in &ops {
            match *op {
                Op::Write(b, v) => {
                    buf.fill(v);
                    file.write(b as u64, &buf).unwrap();
                    model[b as usize].fill(v);
                    logical_accesses += 1;
                }
                Op::Read(b) => {
                    file.read(b as u64, &mut buf).unwrap();
                    prop_assert_eq!(&buf, &model[b as usize], "block {} diverged", b);
                    logical_accesses += 1;
                }
                Op::Flush => file.flush().unwrap(),
                Op::DropCache => file.drop_cache().unwrap(),
            }
        }
        // Final cold read-back of everything.
        file.drop_cache().unwrap();
        for (i, want) in model.iter().enumerate() {
            file.read(i as u64, &mut buf).unwrap();
            prop_assert_eq!(&buf, want, "final block {}", i);
        }
        // Sanity on the counters: reads can never exceed logical accesses
        // plus the final read-back; each flush/eviction writes each dirty
        // block at most once per dirtying.
        let io = env.io_stats();
        prop_assert!(io.reads <= logical_accesses + 12);
        prop_assert!(io.writes <= logical_accesses + 1);
    }
}
