//! Offline shim for the `proptest` crate, implemented from scratch.
//!
//! Supports the subset this workspace's property suites use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! range/tuple/[`Just`](strategy::Just)/[`any`](arbitrary::any)
//! strategies, `prop_map`/`prop_flat_map` combinators,
//! [`collection::vec`], [`prop_oneof!`], and the
//! `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the case number, the
//!   run's seed, and the assertion message; re-running reproduces it
//!   deterministically (seeds derive from the test name).
//! * Case count comes from `ProptestConfig::with_cases` and can be
//!   overridden globally with the `PROPTEST_CASES` environment variable —
//!   the knob CI uses to keep the suites inside the tier-1 time budget.

pub mod strategy;

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, spanning several orders of magnitude.
            let mag = rng.unit_f64() * 1e6;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    //! The per-test driver invoked by the [`proptest!`](crate::proptest) macro.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic source of randomness handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// New generator for one test case.
        pub fn new(seed: u64) -> Self {
            Self(StdRng::seed_from_u64(seed))
        }

        /// Raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            rand::RngExt::random_unit(&mut self.0)
        }

        /// Uniform sample from a range, delegating to the `rand` shim's
        /// unbiased sampling (single source of truth for RNG math).
        pub fn sample<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
            rand::RngExt::random_range(&mut self.0, range)
        }

        /// Uniform `usize` in `[lo, hi]`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            self.sample(lo..=hi)
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Runner configuration (`ProptestConfig` in upstream naming).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
        /// Give up after this many `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256, max_global_rejects: 65_536 }
        }
    }

    impl Config {
        /// Default config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    /// The `PROPTEST_CASES` override, if set and parseable.
    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// Stable 64-bit hash of the test name, so each property gets its own
    /// deterministic stream.
    fn name_seed(name: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Run `body` against `config.cases` generated cases (honouring the
    /// `PROPTEST_CASES` env override), panicking on the first failure.
    pub fn run<F>(config: Config, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = env_cases().unwrap_or(config.cases);
        let base = name_seed(name);
        let mut rejects = 0u32;
        let mut accepted = 0u32;
        let mut attempt = 0u64;
        while accepted < cases {
            let seed = base.wrapping_add(attempt.wrapping_mul(0x9e3779b97f4a7c15));
            attempt += 1;
            let mut rng = TestRng::new(seed);
            match body(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest '{name}': too many prop_assume! rejections \
                             ({rejects}) before reaching {cases} cases"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {accepted} \
                         (attempt {attempt}, seed {seed:#x}):\n{msg}\n\
                         (shim runner: no shrinking; rerun is deterministic)"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0.0f64..1.0, v in proptest::collection::vec(0u8..8, 1..20)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            $crate::test_runner::run($config, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)*
                let __proptest_result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                __proptest_result
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $fmt:expr $(, $args:expr)* $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($fmt $(, $args)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $fmt:expr $(, $args:expr)* $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($fmt $(, $args)*), l, r
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Reject the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
