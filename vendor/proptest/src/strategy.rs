//! The [`Strategy`] trait and the combinators / primitive strategies the
//! workspace's property suites use.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws one value per case from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<W, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> W,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it maps to.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (rejection sampling with a cap).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Box a strategy behind the object-safe core (used by [`prop_oneof!`](crate::prop_oneof)).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, W, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> W,
{
    type Value = W;
    fn generate(&self, rng: &mut TestRng) -> W {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 consecutive values", self.whence)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `arms`.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.arms.len() - 1);
        self.arms[i].generate(rng)
    }
}

// ---- Range strategies ------------------------------------------------------

// All range sampling delegates to the `rand` shim via `TestRng::sample`, so
// there is a single implementation of the RNG math (including unbiased
// integer sampling and the f64 exclusive-endpoint guard).
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- Tuple strategies ------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..5000 {
            let v = (2usize..14).generate(&mut rng);
            assert!((2..14).contains(&v));
            let w = (2usize..=41).generate(&mut rng);
            assert!((2..=41).contains(&w));
            let f = (0.2f64..8.0).generate(&mut rng);
            assert!((0.2..8.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(2);
        let s = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n).prop_map(|v| (v.len(), v)));
        for _ in 0..200 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(n, v.len());
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::new(3);
        let u = Union::new(vec![boxed(Just(0u8)), boxed(Just(1u8)), boxed(Just(2u8))]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
