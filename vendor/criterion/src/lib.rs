//! Offline shim for the `criterion` benchmark harness, implemented from
//! scratch. Supports the subset the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each bench warms up, then runs timed batches until it
//! accumulates `measure_ms` of wall clock (or `sample_size` batches,
//! whichever comes first) and reports the mean per-iteration time. Pass
//! `--quick` (as in `cargo bench -- --quick`) for a ~10x shorter budget.
//!
//! Results print as a fixed-width table; when `CHRONORANK_BENCH_JSON` names
//! a path, a machine-readable summary is also written there (this is how
//! `BENCH_BASELINE.json` is produced).

use std::io::Write as _;
use std::time::{Duration, Instant};

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// `group/function` identifier.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// The top-level harness state.
#[derive(Default)]
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
    results: Vec<Sample>,
}

impl Criterion {
    /// Build from `cargo bench` CLI arguments (recognizes `--quick` and a
    /// positional substring filter; ignores the flags cargo itself adds).
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => c.quick = true,
                "--bench" | "--test" => {}
                s if s.starts_with('-') => {} // unknown flags: ignore
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Top-level single benchmark (id is the bare name, as upstream).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let quick = self.quick;
        self.record(name.into(), quick, 100, f);
        self
    }

    fn record(
        &mut self,
        id: String,
        quick: bool,
        sample_size: usize,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            measure_budget: if quick {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(200)
            },
            max_batches: sample_size.max(1) as u64,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        eprintln!("{id:<44} {:>14} {:>10} iters", fmt_ns(b.mean_ns), b.iters);
        self.results.push(Sample { id, mean_ns: b.mean_ns, iters: b.iters });
    }

    /// Print the final table and write the JSON summary if requested.
    pub fn final_summary(&self) {
        eprintln!("\n== bench summary ({} benchmarks)", self.results.len());
        for s in &self.results {
            eprintln!("{:<44} {:>14}", s.id, fmt_ns(s.mean_ns));
        }
        if let Ok(path) = std::env::var("CHRONORANK_BENCH_JSON") {
            if let Err(e) = self.write_json(&path) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("wrote JSON summary to {path}");
            }
        }
    }

    fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{{")?;
        writeln!(f, "  \"harness\": \"criterion-shim\",")?;
        writeln!(f, "  \"quick\": {},", self.quick)?;
        writeln!(f, "  \"benchmarks\": [")?;
        for (i, s) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            writeln!(
                f,
                "    {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{comma}",
                s.id, s.mean_ns, s.iters
            )?;
        }
        writeln!(f, "  ]")?;
        writeln!(f, "}}")?;
        Ok(())
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of timed batches (upstream: number of samples).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Measure one function.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.into());
        let quick = self.criterion.quick;
        let sample_size = self.sample_size;
        self.criterion.record(id, quick, sample_size, f);
        self
    }

    /// End the group (no-op beyond matching the upstream API).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    measure_budget: Duration,
    max_batches: u64,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, storing the mean per-iteration cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup + batch sizing: grow until one batch costs >= ~1ms.
        let mut batch = 1u64;
        let per_iter_est = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break dt.as_nanos() as f64 / batch as f64;
            }
            batch *= 4;
        };
        // Measured phase.
        let mut total_ns = 0.0f64;
        let mut total_iters = 0u64;
        let mut batches = 0u64;
        let deadline = Instant::now() + self.measure_budget;
        while batches < self.max_batches && Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total_ns += t0.elapsed().as_nanos() as f64;
            total_iters += batch;
            batches += 1;
        }
        self.mean_ns = if total_iters > 0 { total_ns / total_iters as f64 } else { per_iter_est };
        self.iters = total_iters.max(batch);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Group benchmark functions under one callable, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { quick: true, filter: None, results: Vec::new() };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns >= 0.0);
        assert!(c.results[0].iters > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { quick: true, filter: Some("wanted".into()), results: Vec::new() };
        c.bench_function("other", |b| b.iter(|| 0));
        assert!(c.results.is_empty());
        c.bench_function("wanted_one", |b| b.iter(|| 0));
        assert_eq!(c.results.len(), 1);
    }

    #[test]
    fn json_summary_roundtrips() {
        let mut c = Criterion { quick: true, filter: None, results: Vec::new() };
        c.results.push(Sample { id: "g/f".into(), mean_ns: 12.5, iters: 1000 });
        let dir = std::env::temp_dir().join(format!("criterion-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        c.write_json(path.to_str().unwrap()).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"id\": \"g/f\""));
        assert!(s.contains("\"mean_ns\": 12.5"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
