//! Offline shim for the `rand` crate: deterministic xoshiro256++ generator
//! behind the same trait names the workspace uses (`SeedableRng`,
//! `RngExt::random_range`, `rngs::StdRng`). Implemented from scratch — the
//! streams do NOT match upstream `rand`, only the API shape does; everything
//! in this workspace that cares about determinism seeds explicitly.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods on any [`RngCore`], mirroring the `rand` 0.9 `Rng`
/// surface this workspace uses.
pub trait RngExt: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn random_unit(&mut self) -> f64 {
        f64_from_bits53(self.next_u64())
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[inline]
fn f64_from_bits53(word: u64) -> f64 {
    // 53 high bits -> uniform double in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty f64 range");
        let u = f64_from_bits53(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "random_range: empty f64 range");
        let u = f64_from_bits53(rng.next_u64());
        lo + (hi - lo) * u
    }
}

// Note: no f32 impl on purpose — a second float impl would make unsuffixed
// float-literal ranges (`0.0..2.0`) ambiguous at every call site.

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` by rejection sampling on 64-bit words
/// (span is at most 2^64 here, so one word suffices).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64() as u128;
    }
    let span64 = span as u64;
    // Largest multiple of span that fits in u64; reject above it.
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let word = rng.next_u64();
        if word <= zone {
            return (word % span64) as u128;
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic under a fixed seed, cheap, and with far
    /// better equidistribution than a bare LCG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..64)
            .filter(|_| a.random_range(0u64..1 << 32) == c.random_range(0u64..1 << 32))
            .count();
        assert!(same < 4, "different seeds should diverge");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(2.5f64..3.25);
            assert!((2.5..3.25).contains(&v), "{v} out of range");
            let w = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(w > 0.0 && w < 1.0);
        }
    }

    #[test]
    fn integer_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets of 0..5 must be hit");
        let mut hi = false;
        for _ in 0..1000 {
            if rng.random_range(0u8..=4) == 4 {
                hi = true;
            }
        }
        assert!(hi, "inclusive upper endpoint must be reachable");
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
