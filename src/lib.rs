//! # chronorank — ranking large temporal data
//!
//! A Rust reproduction of *“Ranking Large Temporal Data”* (Jestes, Phillips,
//! Li, Tang — PVLDB 5(11), 2012). The library answers **aggregate top-k
//! queries** on temporal data: given `m` objects whose score attribute is a
//! piecewise-linear function of time, `top-k(t1, t2, sum)` returns the `k`
//! objects with the largest `∫_{t1}^{t2} g_i(t) dt`.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`storage`] — block storage engine with a buffer pool and IO counters,
//! * [`index`] — disk-based B+-tree, interval tree, external sort,
//! * [`curve`] — piecewise-linear / piecewise-polynomial curve model,
//! * [`core`] — the paper's exact (`EXACT1..3`) and approximate
//!   (`APPX1-B/2-B/1/2/2+`) ranking methods,
//! * [`workloads`] — synthetic MesoWest-Temp / Memetracker-Meme style data
//!   generators and query workloads,
//! * [`serve`] — the sharded, cost-routed query-serving engine with
//!   shard-local result caching,
//! * [`live`] — the WAL-backed streaming ingest engine: durable right-edge
//!   appends, mutable shard tails merged into every answer, and §4
//!   amortized rebuilds published as non-blocking epoch swaps,
//! * [`net`] — the wire protocol: a length-prefixed CRC'd frame format, a
//!   TCP server fronting the serve/live engines with admission control,
//!   and a blocking client with request pipelining,
//! * [`obs`] — the telemetry plane: lock-free counters/gauges/log-bucketed
//!   histograms in a process-wide registry with Prometheus-style text
//!   exposition (served over the wire as `METRICS`), plus a slow-query
//!   flight recorder of end-to-end traces.
//!
//! ## Quickstart
//!
//! ```
//! use chronorank::core::{Exact3, RankMethod, AggKind};
//! use chronorank::workloads::{DatasetGenerator, TempConfig, TempGenerator};
//!
//! // Build a small weather-station style dataset.
//! let set = TempGenerator::new(TempConfig {
//!     objects: 50,
//!     avg_segments: 80,
//!     seed: 7,
//!     ..Default::default()
//! })
//! .generate_set();
//!
//! // Index it with the paper's best exact method and rank.
//! let exact3 = Exact3::build(&set, Default::default()).unwrap();
//! let (t1, t2) = (set.t_min() + 0.2 * set.span(), set.t_min() + 0.4 * set.span());
//! let top = exact3.top_k(t1, t2, 10, AggKind::Sum).unwrap();
//! assert_eq!(top.len(), 10);
//! ```

pub use chronorank_core as core;
pub use chronorank_curve as curve;
pub use chronorank_index as index;
pub use chronorank_live as live;
pub use chronorank_net as net;
pub use chronorank_obs as obs;
pub use chronorank_serve as serve;
pub use chronorank_storage as storage;
pub use chronorank_workloads as workloads;
